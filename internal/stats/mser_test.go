package stats

import (
	"errors"
	"math"
	"testing"
)

// lcg is a tiny deterministic generator for synthetic noise (the stats
// package must not depend on the simulator's RNG).
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>11) / float64(1<<53)
}

func TestMSER5TooShort(t *testing.T) {
	for _, n := range []int{0, 1, 5, 9} {
		x := make([]float64, n)
		if got := MSER5(x); got != 0 {
			t.Fatalf("MSER5(len %d) = %d, want 0", n, got)
		}
		if _, stat := MSER5Stat(x); !math.IsNaN(stat) {
			t.Fatalf("MSER5Stat(len %d) stat = %g, want NaN", n, stat)
		}
	}
}

func TestMSER5ConstantSeriesNeedsNoTruncation(t *testing.T) {
	x := make([]float64, 200)
	for i := range x {
		x[i] = 3.5
	}
	if got := MSER5(x); got != 0 {
		t.Fatalf("MSER5(constant) = %d, want 0", got)
	}
}

func TestMSER5FindsStepTransient(t *testing.T) {
	// 50 transient observations far above the stationary level, then
	// 450 stationary ones with mild noise: MSER-5 must truncate at
	// least the transient, and not eat deep into the stationary part.
	g := lcg(1983)
	x := make([]float64, 500)
	for i := range x {
		if i < 50 {
			x[i] = 100 + g.next()
		} else {
			x[i] = 2 + 0.1*g.next()
		}
	}
	got := MSER5(x)
	if got < 50 {
		t.Fatalf("MSER5 truncated %d observations, transient is 50", got)
	}
	if got > 100 {
		t.Fatalf("MSER5 truncated %d observations, far beyond the 50-point transient", got)
	}
	// The returned cut is always on a batch boundary and within the
	// half-series guard.
	if got%5 != 0 {
		t.Fatalf("truncation %d is not a multiple of the batch size", got)
	}
	if got > len(x)/2 {
		t.Fatalf("truncation %d exceeds half the series", got)
	}
}

func TestMSER5StatDropsAfterTransientRemoved(t *testing.T) {
	g := lcg(7)
	x := make([]float64, 400)
	for i := range x {
		if i < 40 {
			x[i] = 50
		} else {
			x[i] = 1 + 0.01*g.next()
		}
	}
	_, with := MSER5Stat(x)
	_, without := MSER5Stat(x[40:])
	if math.IsNaN(with) || math.IsNaN(without) {
		t.Fatal("unexpected NaN statistic")
	}
	if without > with {
		t.Fatalf("stat without transient %g > stat with transient %g", without, with)
	}
}

func TestMSER5RejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x := make([]float64, 20)
		x[7] = bad
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("no panic for %g", bad)
				}
				err, ok := r.(error)
				if !ok || !errors.Is(err, ErrNonFiniteSample) {
					t.Fatalf("panic %v does not wrap ErrNonFiniteSample", r)
				}
			}()
			MSER5(x)
		}()
	}
}
