package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rsin/internal/rng"
)

// TestHistogramAddBoundaryClamp pins the rounding-at-the-upper-edge fix:
// with lo=0, hi=0.1, n=3 the value 0.09999999999999999 satisfies x < hi
// but (x-lo)*widthInv scales to exactly 3.0, one past the last bucket.
// Pre-fix code indexed out of range and panicked; the clamp must land
// the observation in the last interior bucket, not in overflow.
func TestHistogramAddBoundaryClamp(t *testing.T) {
	h := NewHistogram(0, 0.1, 3)
	x := 0.09999999999999999
	if x >= 0.1 {
		t.Fatal("test value no longer below hi; pick a new boundary case")
	}
	h.Add(x) // panicked before the fix
	if got := h.Bucket(2); got != 1 {
		t.Errorf("boundary value bucket count = %d, want 1 in last bucket", got)
	}
	if h.over != 0 || h.under != 0 {
		t.Errorf("boundary value leaked to under/over = %d/%d", h.under, h.over)
	}
	if h.N() != 1 {
		t.Errorf("N = %d, want 1", h.N())
	}
}

// TestHistogramAddNeverPanicsProperty sweeps random layouts and
// observations: Add must never index out of range, and every in-range
// observation must land in an interior bucket.
func TestHistogramAddNeverPanicsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		src := rng.New(seed)
		lo := src.Norm()
		hi := lo + src.Exp(1) + 1e-9
		h := NewHistogram(lo, hi, int(n%64)+1)
		var interior int64
		for i := 0; i < 256; i++ {
			// Bias draws toward the upper boundary where the bug lived.
			x := lo + (hi-lo)*(1-src.Exp(1)*1e-3)
			h.Add(x)
			if x >= lo && x < hi {
				interior++
			}
		}
		var sum int64
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return sum == interior && sum+h.under+h.over == h.N()
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestTimeWeightedFinishEmpty pins the empty-accumulator fix: Finish on
// a never-started accumulator must be a no-op returning 0. Pre-fix code
// called Set(t, 0), silently marking the window started — so a later
// Set accrued area from a time the variable was never observed.
func TestTimeWeightedFinishEmpty(t *testing.T) {
	var tw TimeWeighted
	if got := tw.Finish(100); got != 0 {
		t.Errorf("Finish on empty accumulator = %v, want 0", got)
	}
	if tw.Duration() != 0 {
		t.Errorf("Finish on empty accumulator opened a window of %v", tw.Duration())
	}
	// The window must still be startable afterwards, anchored at the
	// first real observation — not at the Finish time.
	tw.Set(200, 7)
	if got := tw.Finish(210); math.Abs(got-7) > 1e-12 {
		t.Errorf("mean after late start = %v, want 7 (window must start at first Set)", got)
	}
	if got := tw.Duration(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Duration = %v, want 10", got)
	}
}

// TestHistogramQuantileTable pins quantile attribution across the
// under/interior/over regions, including the over-mass cases the
// pre-fix code got wrong by fallthrough.
func TestHistogramQuantileTable(t *testing.T) {
	bucketMid := func(h *Histogram, i int) float64 {
		w := 10.0 / float64(h.NumBuckets())
		return (float64(i) + 0.5) * w
	}
	t.Run("all mass in over", func(t *testing.T) {
		h := NewHistogram(0, 10, 5)
		for i := 0; i < 4; i++ {
			h.Add(50)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 10 {
				t.Errorf("Quantile(%v) = %v, want hi=10", q, got)
			}
		}
	})
	t.Run("all mass in under", func(t *testing.T) {
		h := NewHistogram(0, 10, 5)
		for i := 0; i < 4; i++ {
			h.Add(-1)
		}
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("Quantile(%v) = %v, want lo=0", q, got)
			}
		}
	})
	t.Run("q=1 selects the max observation", func(t *testing.T) {
		h := NewHistogram(0, 10, 5)
		h.Add(1) // bucket 0
		h.Add(1)
		h.Add(1)
		h.Add(9) // bucket 4
		if got, want := h.Quantile(1), bucketMid(h, 4); got != want {
			t.Errorf("Quantile(1) = %v, want last-occupied-bucket midpoint %v", got, want)
		}
		// Pre-fix: target = 4 = total, so the scan exhausted every bucket
		// and returned hi by fallthrough even with zero overflow mass.
		if got := h.Quantile(1); got == 10 {
			t.Error("Quantile(1) fell through to hi despite all mass being interior")
		}
	})
	t.Run("interior split with over tail", func(t *testing.T) {
		h := NewHistogram(0, 10, 5)
		for i := 0; i < 6; i++ {
			h.Add(3) // bucket 1
		}
		for i := 0; i < 4; i++ {
			h.Add(99) // over
		}
		if got, want := h.Quantile(0.5), bucketMid(h, 1); got != want {
			t.Errorf("Quantile(0.5) = %v, want %v", got, want)
		}
		if got := h.Quantile(0.9); got != 10 {
			t.Errorf("Quantile(0.9) = %v, want hi=10 (rank lands in over mass)", got)
		}
	})
	t.Run("q=0 with under tail", func(t *testing.T) {
		h := NewHistogram(0, 10, 5)
		h.Add(-3)
		h.Add(7)
		if got := h.Quantile(0); got != 0 {
			t.Errorf("Quantile(0) = %v, want lo=0", got)
		}
	})
}

func TestHistogramQuantilePanicsOutsideUnitInterval(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			NewHistogram(0, 1, 4).Quantile(q)
		}()
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	a.Add(1)
	a.Add(-2)
	b.Add(1)
	b.Add(9)
	b.Add(42)
	a.Merge(b)
	if a.N() != 5 {
		t.Errorf("merged N = %d, want 5", a.N())
	}
	if a.Bucket(0) != 2 || a.Bucket(4) != 1 {
		t.Errorf("merged buckets 0/4 = %d/%d, want 2/1", a.Bucket(0), a.Bucket(4))
	}
	if a.under != 1 || a.over != 1 {
		t.Errorf("merged under/over = %d/%d, want 1/1", a.under, a.over)
	}
	if got, want := a.Mean(), (1.0-2+1+9+42)/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("merged Mean = %v, want %v", got, want)
	}
}

func TestHistogramMergeLayoutPanics(t *testing.T) {
	for name, other := range map[string]*Histogram{
		"lo":      NewHistogram(1, 10, 5),
		"hi":      NewHistogram(0, 11, 5),
		"buckets": NewHistogram(0, 10, 6),
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic merging mismatched layouts")
				}
				if !strings.Contains(r.(string), "merging histograms") {
					t.Errorf("panic message %v", r)
				}
			}()
			NewHistogram(0, 10, 5).Merge(other)
		})
	}
}

// TestTimeWeightedMergeStitch: merging two closed windows must give the
// duration-weighted mean, with Duration summing the two windows.
func TestTimeWeightedMergeStitch(t *testing.T) {
	var a, b TimeWeighted
	a.Set(0, 2)
	a.Finish(10) // value 2 over 10 time units
	b.Set(100, 6)
	b.Finish(130) // value 6 over 30 time units
	a.Merge(&b)
	if got, want := a.Mean(), (2*10+6*30)/40.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("stitched Mean = %v, want %v", got, want)
	}
	if got := a.Duration(); math.Abs(got-40) > 1e-12 {
		t.Errorf("stitched Duration = %v, want 40", got)
	}
}

func TestTimeWeightedMergeEmptySides(t *testing.T) {
	var a, b TimeWeighted
	a.Set(0, 3)
	a.Finish(5)
	before := a
	a.Merge(&b) // empty rhs: no-op
	if a != before {
		t.Error("merging an empty accumulator changed the receiver")
	}
	var c TimeWeighted
	c.Merge(&a) // empty lhs: adopt rhs
	if c.Mean() != a.Mean() || c.Duration() != a.Duration() {
		t.Error("merging into an empty accumulator did not adopt the argument")
	}
}

// TestBatchMeansMergeExactOnBoundary: when both accumulators sit on a
// batch boundary (the shard orchestrator's whole-batch quota invariant),
// Merge is an exact concatenation — the merged interval equals the one a
// single stream would produce from the same batch means.
func TestBatchMeansMergeExactOnBoundary(t *testing.T) {
	src := rng.New(5)
	single := NewBatchMeans(25)
	a := NewBatchMeans(25)
	b := NewBatchMeans(25)
	for i := 0; i < 200; i++ { // 8 whole batches
		x := src.Exp(1)
		single.Add(x)
		if i < 100 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Batches() != single.Batches() {
		t.Fatalf("merged Batches = %d, want %d", a.Batches(), single.Batches())
	}
	mi, si := a.Interval(0.95), single.Interval(0.95)
	if math.Float64bits(mi.Mean) != math.Float64bits(si.Mean) ||
		math.Float64bits(mi.HalfWide) != math.Float64bits(si.HalfWide) {
		t.Errorf("merged interval %v != single-stream interval %v (must be bit-exact on whole batches)", mi, si)
	}
}

func TestBatchMeansMergePoolsPartialBatches(t *testing.T) {
	a := NewBatchMeans(10)
	b := NewBatchMeans(10)
	for i := 0; i < 7; i++ {
		a.Add(1)
	}
	for i := 0; i < 5; i++ {
		b.Add(2)
	}
	a.Merge(b) // 7+5 = 12 pooled partial obs → one completed batch of 10
	if a.Batches() != 1 {
		t.Errorf("Batches = %d, want 1 (pooled partials close a batch)", a.Batches())
	}
	if a.BatchSize() != 10 {
		t.Errorf("BatchSize = %d, want 10", a.BatchSize())
	}
}

func TestBatchMeansMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic merging different batch sizes")
		}
	}()
	NewBatchMeans(10).Merge(NewBatchMeans(20))
}

// shardStreams builds k Welford accumulators from decorrelated streams,
// plus a single-stream accumulator fed the same observations in shard
// order — the reference the merged result is compared against.
func shardStreams(k, perShard int) (shards []Welford, single Welford) {
	shards = make([]Welford, k)
	for s := 0; s < k; s++ {
		src := rng.New(uint64(s)*0x9e3779b97f4a7c15 + 1)
		for i := 0; i < perShard; i++ {
			x := src.Exp(1)
			shards[s].Add(x)
			single.Add(x)
		}
	}
	return shards, single
}

// TestWelfordMergeAscendingOrderReproducible is the canonical-order
// property behind internal/shard's merge contract: folding per-shard
// accumulators in ascending shard order is bit-for-bit reproducible
// across repetitions, and agrees with a single-stream Add over the same
// observations to within documented floating-point tolerance (1e-9
// relative — the same tolerance TestWelfordMergeMatchesSequential
// documents for the two-way merge).
func TestWelfordMergeAscendingOrderReproducible(t *testing.T) {
	const k, perShard = 8, 500
	fold := func() Welford {
		shards, _ := shardStreams(k, perShard)
		acc := shards[0]
		for s := 1; s < k; s++ {
			acc.Merge(&shards[s])
		}
		return acc
	}
	first := fold()
	for rep := 0; rep < 3; rep++ {
		if again := fold(); math.Float64bits(again.Mean()) != math.Float64bits(first.Mean()) ||
			math.Float64bits(again.Variance()) != math.Float64bits(first.Variance()) {
			t.Fatalf("ascending fold not reproducible: rep %d gave %v/%v, first gave %v/%v",
				rep, again.Mean(), again.Variance(), first.Mean(), first.Variance())
		}
	}
	_, single := shardStreams(k, perShard)
	if first.N() != single.N() {
		t.Fatalf("merged N = %d, want %d", first.N(), single.N())
	}
	if rel := math.Abs(first.Mean()-single.Mean()) / math.Abs(single.Mean()); rel > 1e-9 {
		t.Errorf("merged mean off by relative %g (> 1e-9) vs single stream", rel)
	}
	if rel := math.Abs(first.Variance()-single.Variance()) / single.Variance(); rel > 1e-9 {
		t.Errorf("merged variance off by relative %g (> 1e-9) vs single stream", rel)
	}
}

// TestWelfordMergeOrderChangesBits documents WHY the shard merge fixes
// canonical ascending order: floating-point merge is order-sensitive, so
// folding the same shard accumulators in a different order produces a
// result that differs in the low bits. If merge order were not part of
// the contract, sharded output could not be byte-identical across
// worker counts.
func TestWelfordMergeOrderChangesBits(t *testing.T) {
	const k, perShard = 8, 500
	shards, _ := shardStreams(k, perShard)
	foldOrder := func(order []int) Welford {
		acc := shards[order[0]]
		for _, s := range order[1:] {
			acc.Merge(&shards[s])
		}
		return acc
	}
	asc := foldOrder([]int{0, 1, 2, 3, 4, 5, 6, 7})
	// Scan reversed and rotated orders for one that flips bits; a single
	// fixed alternative could coincidentally round identically.
	orders := [][]int{
		{7, 6, 5, 4, 3, 2, 1, 0},
		{1, 2, 3, 4, 5, 6, 7, 0},
		{4, 5, 6, 7, 0, 1, 2, 3},
		{0, 2, 4, 6, 1, 3, 5, 7},
	}
	for _, ord := range orders {
		alt := foldOrder(ord)
		if math.Float64bits(alt.Mean()) != math.Float64bits(asc.Mean()) ||
			math.Float64bits(alt.Variance()) != math.Float64bits(asc.Variance()) {
			return // order-sensitivity demonstrated
		}
	}
	t.Skip("all tested merge orders rounded identically on this data; order-sensitivity not demonstrable here")
}
