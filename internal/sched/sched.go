// Package sched implements the centralized scheduling baselines the
// paper compares its distributed approach against:
//
//   - PriorityCircuit: Foster's associative priority circuit, which
//     finds the first free resource in O(log₂ m) gate delays
//     (paper's reference [34]); built gate-for-gate on internal/logic
//     so the depth claim is checked structurally.
//   - RippleSelector: the tree/daisy-chain hardware allocator of the
//     paper's reference [25], with O(m) selection delay.
//   - CentralScheduler: a sequential scheduler front-ending a network:
//     requests are served one at a time, each costing a resource-search
//     plus an O(log₂(p·m)) crosspoint setup; its cumulative cost
//     reproduces the paper's O(p·log₂ m) bound for servicing p requests
//     versus the distributed network's O(log₂ N) independent-of-p cost.
//   - MaxAllocation: exhaustive optimal mapping search on an Omega
//     network (the paper's enumeration baseline of (x choose y)·y!
//     mappings), used to measure how close distributed scheduling gets
//     to the optimum.
package sched

import (
	"fmt"
	"math"
	"math/bits"

	"rsin/internal/logic"
	"rsin/internal/omega"
)

// PriorityCircuit is a gate-level first-free-resource finder with
// logarithmic depth: a parallel-prefix OR computes, for every position,
// whether any earlier position is free; position i wins iff it is free
// and no earlier one is.
type PriorityCircuit struct {
	m       int
	c       *logic.Circuit
	freeIn  []logic.Node
	winner  []logic.Node
	anyFree logic.Node
}

// NewPriorityCircuit builds the circuit for m resources (m ≥ 1).
func NewPriorityCircuit(m int) *PriorityCircuit {
	if m <= 0 {
		panic("sched: priority circuit needs m ≥ 1")
	}
	c := logic.New()
	pc := &PriorityCircuit{m: m, c: c}
	pc.freeIn = make([]logic.Node, m)
	for i := range pc.freeIn {
		pc.freeIn[i] = c.Input()
	}
	// Kogge–Stone parallel-prefix OR: after the sweep, prefix[i] is the
	// OR of free[0..i].
	prefix := append([]logic.Node(nil), pc.freeIn...)
	for d := 1; d < m; d *= 2 {
		next := append([]logic.Node(nil), prefix...)
		for i := d; i < m; i++ {
			next[i] = c.Gate(logic.OpOr, prefix[i], prefix[i-d])
		}
		prefix = next
	}
	pc.anyFree = prefix[m-1]
	pc.winner = make([]logic.Node, m)
	pc.winner[0] = pc.freeIn[0]
	for i := 1; i < m; i++ {
		notBefore := c.Gate(logic.OpNot, prefix[i-1])
		pc.winner[i] = c.Gate(logic.OpAnd, pc.freeIn[i], notBefore)
	}
	return pc
}

// Select returns the index of the first free resource, whether any was
// free, and the circuit's settle time in gate delays.
func (pc *PriorityCircuit) Select(free []bool) (idx int, ok bool, delay int) {
	if len(free) != pc.m {
		panic("sched: free vector length mismatch")
	}
	in := make(map[logic.Node]bool, pc.m)
	for i, n := range pc.freeIn {
		in[n] = free[i]
	}
	vals, times := pc.c.Eval(in, nil)
	idx, ok = -1, vals[pc.anyFree]
	for i, w := range pc.winner {
		if t := times[w]; t > delay {
			delay = t
		}
		if vals[w] && idx == -1 {
			idx = i
		}
	}
	if t := times[pc.anyFree]; t > delay {
		delay = t
	}
	return idx, ok, delay
}

// Depth returns the circuit's worst-case structural depth bound,
// 2·⌈log₂ m⌉ + 2 gate delays (prefix network plus the win gates).
func (pc *PriorityCircuit) Depth() int {
	if pc.m == 1 {
		return 1
	}
	return 2*bits.Len(uint(pc.m-1)) + 2
}

// RippleSelector models the daisy-chained allocator of the paper's
// reference [25]: the free/busy status ripples through one cell per
// resource, so the selection delay is proportional to the index of the
// winning resource — O(m) in the worst case.
type RippleSelector struct {
	m int
}

// NewRippleSelector returns a selector over m resources.
func NewRippleSelector(m int) *RippleSelector {
	if m <= 0 {
		panic("sched: ripple selector needs m ≥ 1")
	}
	return &RippleSelector{m: m}
}

// Select returns the first free index, whether any was free, and the
// ripple delay (cells traversed).
func (rs *RippleSelector) Select(free []bool) (idx int, ok bool, delay int) {
	if len(free) != rs.m {
		panic("sched: free vector length mismatch")
	}
	for i, f := range free {
		if f {
			return i, true, i + 1
		}
	}
	return -1, false, rs.m
}

// Selector is a resource-search strategy with a hardware delay model.
type Selector interface {
	Select(free []bool) (idx int, ok bool, delay int)
}

// CentralScheduler serves resource requests sequentially: each request
// runs one Select over the free vector plus a crosspoint setup of
// ⌈log₂(p·m)⌉ delay units (decode the switch location), the cost model
// of Section IV's comparison. It accumulates the total delay-units
// spent, demonstrating the O(p·log₂ m) sequential bottleneck.
type CentralScheduler struct {
	p, m     int
	free     []bool
	sel      Selector
	TotalOps int64 // accumulated delay units
	Served   int64 // granted requests
}

// NewCentralScheduler returns a scheduler for p processors and m
// resources using the given selector.
func NewCentralScheduler(p, m int, sel Selector) *CentralScheduler {
	if p <= 0 || m <= 0 {
		panic("sched: invalid scheduler shape")
	}
	free := make([]bool, m)
	for i := range free {
		free[i] = true
	}
	return &CentralScheduler{p: p, m: m, free: free, sel: sel}
}

// SetupCost returns the crosspoint-decode cost ⌈log₂(p·m)⌉.
func (cs *CentralScheduler) SetupCost() int {
	return bits.Len(uint(cs.p*cs.m - 1))
}

// Request serves one request: search for a free resource and, if found,
// allocate it. The scheduler is strictly sequential, so the cost of a
// batch is the sum of per-request costs.
func (cs *CentralScheduler) Request() (idx int, ok bool) {
	i, ok, d := cs.sel.Select(cs.free)
	cs.TotalOps += int64(d)
	if !ok {
		return -1, false
	}
	cs.TotalOps += int64(cs.SetupCost())
	cs.free[i] = false
	cs.Served++
	return i, true
}

// Release frees resource idx.
func (cs *CentralScheduler) Release(idx int) {
	if idx < 0 || idx >= cs.m || cs.free[idx] {
		panic(fmt.Sprintf("sched: bad release of %d", idx))
	}
	cs.free[idx] = true
}

// MaxAllocation exhaustively searches for the maximum number of
// (processor, output-port) pairs that can be routed simultaneously on
// an idle Omega network of the given size, with requesting processors
// pids and free ports dsts — the centralized enumeration the paper
// describes as requiring up to (x choose y)·y! trials. Exponential;
// intended for small networks.
func MaxAllocation(n *omega.Omega, pids, dsts []int) int {
	best := 0
	used := make([]bool, len(dsts))
	var rec func(i, granted int)
	rec = func(i, granted int) {
		remaining := len(pids) - i
		if granted+remaining <= best {
			return // prune: cannot beat best
		}
		if i == len(pids) {
			if granted > best {
				best = granted
			}
			return
		}
		// Option: leave this processor unallocated.
		rec(i+1, granted)
		for di, d := range dsts {
			if used[di] {
				continue
			}
			if g, ok := n.AcquireTag(pids[i], d); ok {
				used[di] = true
				rec(i+1, granted+1)
				n.ReleasePath(g)
				n.ReleaseResource(g)
				used[di] = false
			}
		}
	}
	rec(0, 0)
	return best
}

// MappingTrials returns the paper's bound on the number of ordered
// mappings a centralized exhaustive scheduler may need to examine for x
// requests and y free resources: C(x,y)·y! when x ≥ y, C(y,x)·x!
// otherwise.
func MappingTrials(x, y int) float64 {
	if x < y {
		x, y = y, x
	}
	// C(x,y) · y!
	c := 1.0
	for i := 0; i < y; i++ {
		c *= float64(x-i) / float64(i+1)
	}
	f := 1.0
	for i := 2; i <= y; i++ {
		f *= float64(i)
	}
	return c * f
}

// DistributedOverhead returns the paper's worst-case per-stage-count
// cost of the distributed algorithm for an N-port network with r×r
// boxes: O(r·log₂ r) work per stage across ⌈log₂ N⌉ stages, independent
// of the number of requesting processors.
func DistributedOverhead(nPorts, boxRadix int) float64 {
	if nPorts < 2 {
		return 1
	}
	stages := math.Ceil(math.Log2(float64(nPorts)))
	perStage := float64(boxRadix) * math.Max(1, math.Log2(float64(boxRadix)))
	return stages * perStage
}

// CentralizedOverhead returns the paper's cost of servicing N requests
// through a centralized scheduler on a blocking network: O(log₂ N) per
// attempt, O(N) attempts per request due to blocking, N requests —
// O(N²·log₂ N) in total.
func CentralizedOverhead(nRequests int) float64 {
	n := float64(nRequests)
	if n < 2 {
		return 1
	}
	return n * n * math.Log2(n)
}
