package sched

import (
	"math"
	"testing"
	"testing/quick"

	"rsin/internal/omega"
	"rsin/internal/rng"
)

func TestPriorityCircuitCorrectness(t *testing.T) {
	for _, m := range []int{1, 2, 3, 7, 8, 16, 33} {
		pc := NewPriorityCircuit(m)
		src := rng.New(uint64(m))
		for trial := 0; trial < 200; trial++ {
			free := make([]bool, m)
			want := -1
			for i := range free {
				free[i] = src.Intn(3) == 0
				if free[i] && want == -1 {
					want = i
				}
			}
			idx, ok, _ := pc.Select(free)
			if (want == -1) == ok {
				t.Fatalf("m=%d: ok=%v with want=%d", m, ok, want)
			}
			if ok && idx != want {
				t.Fatalf("m=%d: idx=%d, want %d (free=%v)", m, idx, want, free)
			}
		}
	}
}

// TestPriorityCircuitLogDepth checks the paper's [34] claim: the
// first-free search settles in O(log₂ m) gate delays.
func TestPriorityCircuitLogDepth(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16, 32, 64, 128} {
		pc := NewPriorityCircuit(m)
		free := make([]bool, m)
		free[m-1] = true // worst case: winner at the far end
		_, _, delay := pc.Select(free)
		bound := pc.Depth()
		if delay > bound {
			t.Errorf("m=%d: delay %d exceeds structural bound %d", m, delay, bound)
		}
		if logBound := 2*int(math.Ceil(math.Log2(float64(m)))) + 2; bound > logBound {
			t.Errorf("m=%d: bound %d exceeds 2·log₂m+2 = %d", m, bound, logBound)
		}
	}
}

func TestRippleSelectorLinearDelay(t *testing.T) {
	rs := NewRippleSelector(64)
	free := make([]bool, 64)
	free[63] = true
	idx, ok, delay := rs.Select(free)
	if !ok || idx != 63 {
		t.Fatalf("idx=%d ok=%v", idx, ok)
	}
	if delay != 64 {
		t.Errorf("ripple delay = %d, want 64 (O(m))", delay)
	}
	free[63] = false
	if _, ok, d := rs.Select(free); ok || d != 64 {
		t.Errorf("empty select: ok=%v delay=%d", ok, d)
	}
}

func TestSelectorsAgree(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		const m = 16
		pc := NewPriorityCircuit(m)
		rs := NewRippleSelector(m)
		free := make([]bool, m)
		for i := range free {
			free[i] = src.Intn(2) == 0
		}
		i1, ok1, _ := pc.Select(free)
		i2, ok2, _ := rs.Select(free)
		return i1 == i2 && ok1 == ok2
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCentralSchedulerSequentialCost(t *testing.T) {
	// Serving p requests costs at least p·(search+setup): the
	// sequential bottleneck of Section IV's comparison.
	const p, m = 16, 32
	cs := NewCentralScheduler(p, m, NewPriorityCircuit(m))
	for i := 0; i < p; i++ {
		if _, ok := cs.Request(); !ok {
			t.Fatalf("request %d failed with free resources", i)
		}
	}
	if cs.Served != p {
		t.Fatalf("served = %d", cs.Served)
	}
	if cs.TotalOps < int64(p*cs.SetupCost()) {
		t.Errorf("total ops %d below p·setup = %d", cs.TotalOps, p*cs.SetupCost())
	}
}

func TestCentralSchedulerExhaustion(t *testing.T) {
	cs := NewCentralScheduler(4, 2, NewRippleSelector(2))
	a, _ := cs.Request()
	b, _ := cs.Request()
	if _, ok := cs.Request(); ok {
		t.Error("request granted with no free resources")
	}
	cs.Release(a)
	if idx, ok := cs.Request(); !ok || idx != a {
		t.Errorf("re-request got %d, want %d", idx, a)
	}
	_ = b
}

func TestCentralSchedulerReleasePanics(t *testing.T) {
	cs := NewCentralScheduler(2, 2, NewRippleSelector(2))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad release")
		}
	}()
	cs.Release(0) // never allocated
}

func TestMappingTrials(t *testing.T) {
	// x=3 requests, y=3 resources: C(3,3)·3! = 6 ordered mappings —
	// exactly the six mappings enumerated in the paper's Section II
	// example.
	if got := MappingTrials(3, 3); got != 6 {
		t.Errorf("MappingTrials(3,3) = %v, want 6", got)
	}
	// x=4, y=2: C(4,2)·2! = 12.
	if got := MappingTrials(4, 2); got != 12 {
		t.Errorf("MappingTrials(4,2) = %v, want 12", got)
	}
	// Symmetric in its arguments.
	if MappingTrials(2, 4) != MappingTrials(4, 2) {
		t.Error("MappingTrials not symmetric")
	}
}

// TestMaxAllocationSectionIIExample reproduces the paper's Section II
// observation via exhaustive search: with processors 0,1,2 and
// resources 0,1,2 on an idle 8×8 Omega network, the optimum allocates
// all 3.
func TestMaxAllocationSectionIIExample(t *testing.T) {
	o := omega.New(8, 1)
	for j := 3; j < 8; j++ {
		o.SetResourceAvailability(j, 0)
	}
	if got := MaxAllocation(o, []int{0, 1, 2}, []int{0, 1, 2}); got != 3 {
		t.Errorf("MaxAllocation = %d, want 3", got)
	}
}

// TestDistributedMatchesOptimalOnIdleNetwork: on an idle network the
// distributed DFS allocates as many requests as the exhaustive optimum
// (sequential greedy with full backtracking is optimal for Omega
// routing when requests arrive one at a time, because it only commits
// paths that succeed).
func TestDistributedMatchesOptimalOnIdleNetwork(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		free := map[int]bool{}
		var dsts []int
		o := omega.New(8, 1)
		for j := 0; j < 8; j++ {
			if src.Intn(2) == 0 {
				o.SetResourceAvailability(j, 0)
			} else {
				free[j] = true
				dsts = append(dsts, j)
			}
		}
		var pids []int
		for p := 0; p < 8; p++ {
			if src.Intn(2) == 0 {
				pids = append(pids, p)
			}
		}
		opt := MaxAllocation(o, pids, dsts)

		got := 0
		for _, pid := range pids {
			if _, ok := o.Acquire(pid); ok {
				got++
			}
		}
		// Greedy-with-reroute may fall at most slightly short of the
		// offline optimum; on these instances it should usually match.
		if got > opt {
			t.Fatalf("distributed %d exceeded exhaustive optimum %d", got, opt)
		}
		if got < opt-1 {
			t.Errorf("trial %d: distributed %d far below optimum %d (pids %v, free %v)",
				trial, got, opt, pids, dsts)
		}
	}
}

func TestOverheadScaling(t *testing.T) {
	// Distributed overhead grows logarithmically with ports; the
	// centralized bound grows superquadratically with requests.
	if DistributedOverhead(64, 2) >= DistributedOverhead(4096, 2) {
		t.Error("distributed overhead should grow with network size")
	}
	d64 := DistributedOverhead(64, 2)
	if d64 > 12 {
		t.Errorf("distributed overhead for 64 ports = %v, want ≈ log₂N = 6 stages × O(1)", d64)
	}
	if CentralizedOverhead(64) < 64*64 {
		t.Error("centralized overhead should be ≥ N²")
	}
	// Crossover: for nontrivial N the distributed cost is far below
	// the centralized cost — the paper's core overhead claim.
	for _, n := range []int{8, 16, 64, 256} {
		if DistributedOverhead(n, 2) >= CentralizedOverhead(n) {
			t.Errorf("N=%d: distributed %v not below centralized %v",
				n, DistributedOverhead(n, 2), CentralizedOverhead(n))
		}
	}
}

func BenchmarkSchedulers(b *testing.B) {
	const m = 64
	free := make([]bool, m)
	free[m-1] = true
	b.Run("priority-circuit", func(b *testing.B) {
		pc := NewPriorityCircuit(m)
		for i := 0; i < b.N; i++ {
			pc.Select(free)
		}
	})
	b.Run("ripple", func(b *testing.B) {
		rs := NewRippleSelector(m)
		for i := 0; i < b.N; i++ {
			rs.Select(free)
		}
	})
}
