package sched

import (
	"testing"
	"testing/quick"

	"rsin/internal/omega"
	"rsin/internal/rng"
)

// randomScenario builds an 8×8 network with a random availability
// pattern, optional random pre-existing circuits, and random request
// sets. It returns the network plus the request/destination lists.
func randomScenario(src *rng.Source, wiring omega.Wiring, circuits int) (*omega.Omega, []int, []int) {
	o := omega.New(8, 1, omega.WithWiring(wiring))
	var dsts []int
	for j := 0; j < 8; j++ {
		if src.Intn(2) == 0 {
			o.SetResourceAvailability(j, 0)
		} else {
			dsts = append(dsts, j)
		}
	}
	for k := 0; k < circuits; k++ {
		o.AcquireTag(src.Intn(8), src.Intn(8))
	}
	var pids []int
	for p := 0; p < 8; p++ {
		if src.Intn(2) == 0 {
			pids = append(pids, p)
		}
	}
	// Remaining eligible destinations only.
	dsts = dsts[:0]
	for j := 0; j < 8; j++ {
		if o.PortEligible(j) {
			dsts = append(dsts, j)
		}
	}
	return o, pids, dsts
}

// TestOptimalMatchesExhaustive: the polynomial max-flow allocator must
// equal the exponential enumeration on random instances, with and
// without pre-existing circuits and on both wirings.
func TestOptimalMatchesExhaustive(t *testing.T) {
	for _, wiring := range []omega.Wiring{omega.OmegaWiring, omega.CubeWiring} {
		for _, circuits := range []int{0, 2} {
			if err := quick.Check(func(seed uint64) bool {
				src := rng.New(seed)
				o, pids, dsts := randomScenario(src, wiring, circuits)
				flow := OptimalAllocation(o, pids, dsts)
				brute := MaxAllocation(o, pids, dsts)
				return flow == brute
			}, &quick.Config{MaxCount: 150}); err != nil {
				t.Errorf("wiring %v, circuits %d: %v", wiring, circuits, err)
			}
		}
	}
}

// TestOptimalSectionIIExample: the Section II scenario has an optimal
// allocation of 3.
func TestOptimalSectionIIExample(t *testing.T) {
	o := omega.New(8, 1)
	for j := 3; j < 8; j++ {
		o.SetResourceAvailability(j, 0)
	}
	if got := OptimalAllocation(o, []int{0, 1, 2}, []int{0, 1, 2}); got != 3 {
		t.Errorf("OptimalAllocation = %d, want 3", got)
	}
}

// TestDistributedWithinOneOfOptimal: sequential distributed scheduling
// with full backtracking commits only successful circuits, so it is a
// maximal (not necessarily maximum) allocation; on these instance sizes
// it stays within one of the max-flow optimum.
func TestDistributedWithinOneOfOptimal(t *testing.T) {
	src := rng.New(2024)
	worstGap := 0
	for trial := 0; trial < 300; trial++ {
		o, pids, dsts := randomScenario(src, omega.OmegaWiring, 0)
		opt := OptimalAllocation(o, pids, dsts)
		got := 0
		for _, pid := range pids {
			if _, ok := o.Acquire(pid); ok {
				got++
			}
		}
		if got > opt {
			t.Fatalf("distributed %d exceeds optimum %d", got, opt)
		}
		if gap := opt - got; gap > worstGap {
			worstGap = gap
		}
	}
	if worstGap > 1 {
		t.Errorf("worst distributed-vs-optimal gap = %d, want ≤ 1", worstGap)
	}
}

func TestOptimalEmptyInputs(t *testing.T) {
	o := omega.New(8, 1)
	if got := OptimalAllocation(o, nil, []int{0, 1}); got != 0 {
		t.Errorf("no requests should allocate 0, got %d", got)
	}
	if got := OptimalAllocation(o, []int{0, 1}, nil); got != 0 {
		t.Errorf("no destinations should allocate 0, got %d", got)
	}
}

func TestOptimalRespectsOccupiedWires(t *testing.T) {
	o := omega.New(8, 1)
	// Only resource 0 free; occupy the network heavily around it.
	for j := 1; j < 8; j++ {
		o.SetResourceAvailability(j, 0)
	}
	g, ok := o.Acquire(0)
	if !ok || g.Port != 0 {
		t.Fatal("setup acquire failed")
	}
	// Port 0 now ineligible (busy bus + no free resource).
	if got := OptimalAllocation(o, []int{1, 2}, []int{0}); got != 0 {
		t.Errorf("allocation through a busy port = %d, want 0", got)
	}
}

func BenchmarkOptimalVsExhaustive(b *testing.B) {
	src := rng.New(5)
	o, pids, dsts := randomScenario(src, omega.OmegaWiring, 0)
	b.Run("max-flow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OptimalAllocation(o, pids, dsts)
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaxAllocation(o, pids, dsts)
		}
	})
}
