package sched

import (
	"rsin/internal/omega"
)

// OptimalAllocation computes, in polynomial time, the maximum number of
// the given requests that can be connected simultaneously to the given
// free output ports of the multistage network — the optimal scheduling
// problem the paper defers to its reference [35] (Juang & Wah).
//
// The reduction: build a unit-capacity flow network over the wire-level
// DAG (source → requesting processors → stage-0 box outputs → … →
// final-stage outputs = eligible ports → sink). Any integral flow
// decomposes into wire-disjoint paths, and wire-disjoint circuits are
// exactly the compatible ones (two circuits may share a 2×2 box when
// they use distinct input and output wires, and wire capacities enforce
// that). The maximum flow therefore equals the maximum simultaneous
// allocation; it is computed with BFS augmentation (Edmonds–Karp),
// polynomial in the network size — versus the (x choose y)·y!
// enumeration of the naive centralized scheduler.
//
// Wires already occupied by existing circuits have zero capacity, so
// the allocator composes with a partially loaded network. dsts lists
// the ports to consider (they must currently be eligible to count).
func OptimalAllocation(o *omega.Omega, pids, dsts []int) int {
	n := o.Ports()
	stages := o.Stages()
	// Node numbering: 0 = source, 1 = sink, 2..2+p-1 = processors,
	// then per (stage, wire) a split pair (in, out).
	src, sink := 0, 1
	procBase := 2
	wireIn := func(s, w int) int { return procBase + len(pids) + 2*(s*n+w) }
	wireOut := func(s, w int) int { return wireIn(s, w) + 1 }
	numNodes := procBase + len(pids) + 2*stages*n

	g := newFlowGraph(numNodes)
	for i, pid := range pids {
		g.addEdge(src, procBase+i, 1)
		in := o.EntryWire(pid)
		for _, w := range o.BoxOutputs(0, in) {
			if !o.WireOccupied(0, w) {
				g.addEdge(procBase+i, wireIn(0, w), 1)
			}
		}
	}
	for s := 0; s < stages; s++ {
		for w := 0; w < n; w++ {
			if o.WireOccupied(s, w) {
				continue
			}
			g.addEdge(wireIn(s, w), wireOut(s, w), 1)
			if s == stages-1 {
				continue // connected to the sink below if eligible
			}
			next := o.NextInput(s, w)
			for _, w2 := range o.BoxOutputs(s+1, next) {
				if !o.WireOccupied(s+1, w2) {
					g.addEdge(wireOut(s, w), wireIn(s+1, w2), 1)
				}
			}
		}
	}
	for _, d := range dsts {
		if o.PortEligible(d) && !o.WireOccupied(stages-1, d) {
			g.addEdge(wireOut(stages-1, d), sink, 1)
		}
	}
	return g.maxFlow(src, sink)
}

// flowGraph is a small adjacency-list residual graph for unit-capacity
// max flow.
type flowGraph struct {
	adj [][]int // node → edge indices
	to  []int
	cap []int
}

func newFlowGraph(nodes int) *flowGraph {
	return &flowGraph{adj: make([][]int, nodes)}
}

// addEdge inserts a directed edge and its zero-capacity residual twin.
func (g *flowGraph) addEdge(from, to, capacity int) {
	g.adj[from] = append(g.adj[from], len(g.to))
	g.to = append(g.to, to)
	g.cap = append(g.cap, capacity)
	g.adj[to] = append(g.adj[to], len(g.to))
	g.to = append(g.to, from)
	g.cap = append(g.cap, 0)
}

// maxFlow runs Edmonds–Karp (BFS augmenting paths). All capacities are
// 0/1, so each augmentation adds one unit.
func (g *flowGraph) maxFlow(src, sink int) int {
	flow := 0
	parentEdge := make([]int, len(g.adj))
	for {
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		parentEdge[src] = -2
		queue := []int{src}
		for len(queue) > 0 && parentEdge[sink] == -1 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[u] {
				v := g.to[e]
				if g.cap[e] > 0 && parentEdge[v] == -1 {
					parentEdge[v] = e
					queue = append(queue, v)
				}
			}
		}
		if parentEdge[sink] == -1 {
			return flow
		}
		// Augment by one unit along the found path.
		for v := sink; v != src; {
			e := parentEdge[v]
			g.cap[e]--
			g.cap[e^1]++
			v = g.to[e^1]
		}
		flow++
	}
}
