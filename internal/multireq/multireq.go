// Package multireq explores the extension the paper explicitly defers
// (Sections I and VII): requests that need several resources at once.
// "Deadlocks may occur when multiple resources are requested by a
// request, and distributed resolution of deadlocks may have high
// overhead. A complete solution is beyond the scope of this paper."
//
// The package makes the deferred problem concrete on top of the
// multistage RSIN: a multi-resource request acquires its resources one
// at a time (the circuit is released after each acquisition, since a
// multi-resource task cannot start until it holds everything), under
// one of three disciplines:
//
//   - HoldAndWait: keep everything acquired so far and wait for the
//     rest — the naive discipline, which deadlocks under circular wait.
//   - OrderedAcquire: each request fixes its target ports up front (the
//     lowest-indexed ones) and acquires them in ascending order, waiting
//     on each in turn. Because every requester climbs the same total
//     order, circular wait is impossible — the classic argument — at
//     the cost of serializing contenders on the low ports, a concrete
//     instance of the "high overhead" the paper anticipates.
//   - ReleaseAndRetry: on any blockage release everything and retry —
//     deadlock-free but wasteful, illustrating the "high overhead" the
//     paper mentions.
//
// A deadlock detector identifies the stuck configuration among
// HoldAndWait requesters. The tests construct the minimal two-request
// circular wait and verify that the other disciplines resolve the same
// scenario.
package multireq

import (
	"fmt"
	"sort"

	"rsin/internal/core"
	"rsin/internal/obs"
)

// Network is the substrate multireq needs: the RSIN operations plus
// targeted (address-mapped) acquisition and resource visibility, both
// provided by the multistage networks in internal/omega.
type Network interface {
	core.Network
	AcquireTag(pid, dst int) (core.Grant, bool)
	FreeResources(j int) int
}

// Discipline selects the multi-resource acquisition strategy.
type Discipline int

const (
	// HoldAndWait keeps partial allocations while waiting — may
	// deadlock.
	HoldAndWait Discipline = iota
	// OrderedAcquire acquires ports in increasing index order —
	// deadlock-free.
	OrderedAcquire
	// ReleaseAndRetry drops all partial allocations on any blockage.
	ReleaseAndRetry
)

// String returns the discipline name.
func (d Discipline) String() string {
	switch d {
	case HoldAndWait:
		return "hold-and-wait"
	case OrderedAcquire:
		return "ordered"
	case ReleaseAndRetry:
		return "release-and-retry"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Request is one multi-resource request in progress.
type Request struct {
	Processor int
	Need      int // resources required
	Held      []core.Grant
	Blocked   bool  // last Step made no progress
	targets   []int // OrderedAcquire: ports to visit, ascending
}

// Pool coordinates multi-resource requests over a shared network. It is
// deliberately untimed and sequential: the point is the deadlock
// structure of the paper's deferred problem, not performance.
type Pool struct {
	net    Network
	disc   Discipline
	reqs   map[int]*Request
	wasted int64 // grants released unfinished by ReleaseAndRetry

	probe obs.Probe
	step  int64 // logical time for probe events (the pool is untimed)
}

// NewPool returns a coordinator over net with the given discipline.
func NewPool(net Network, disc Discipline) *Pool {
	return &Pool{net: net, disc: disc, reqs: make(map[int]*Request)}
}

// Wasted returns the number of grants released and re-sought by the
// ReleaseAndRetry discipline — its overhead measure.
func (p *Pool) Wasted() int64 { return p.wasted }

// SetProbe attaches an observability probe. The pool is untimed, so
// events carry a logical step counter as their time, keeping them
// ordered and deterministic.
func (p *Pool) SetProbe(probe obs.Probe) { p.probe = probe }

// emit sends one lifecycle event at the next logical step.
func (p *Pool) emit(kind obs.Kind, pid, port int, aux int64) {
	p.step++
	p.probe.Event(obs.Event{T: float64(p.step), Kind: kind, Pid: pid, Port: port, Aux: aux})
}

// Submit registers a request by processor pid for need resources.
func (p *Pool) Submit(pid, need int) *Request {
	if need <= 0 {
		panic("multireq: need must be positive")
	}
	if _, dup := p.reqs[pid]; dup {
		panic(fmt.Sprintf("multireq: processor %d already has a request", pid))
	}
	r := &Request{Processor: pid, Need: need}
	if p.disc == OrderedAcquire {
		if need > p.net.Ports() {
			panic("multireq: ordered discipline needs one port per resource")
		}
		for j := 0; j < need; j++ {
			r.targets = append(r.targets, j)
		}
	}
	p.reqs[pid] = r
	return r
}

// Step advances one request by at most one acquisition and returns
// whether it made progress.
func (p *Pool) Step(pid int) bool {
	r := p.reqs[pid]
	if r == nil {
		panic(fmt.Sprintf("multireq: no request for processor %d", pid))
	}
	if len(r.Held) == r.Need {
		return false // already satisfied
	}
	switch p.disc {
	case OrderedAcquire:
		// Wait on the next predetermined target in ascending order.
		target := r.targets[len(r.Held)]
		if p.net.FreeResources(target) > 0 {
			if g, ok := p.net.AcquireTag(pid, target); ok {
				p.net.ReleasePath(g)
				r.Held = append(r.Held, g)
				r.Blocked = false
				if p.probe != nil {
					p.emit(obs.KindGrant, pid, g.Port, int64(len(r.Held)))
				}
				return true
			}
		}
		r.Blocked = true
		if p.probe != nil {
			p.emit(obs.KindEnqueue, pid, target, int64(len(r.Held)))
		}
		return false
	default:
		g, ok := p.net.Acquire(pid)
		if ok {
			p.net.ReleasePath(g)
			r.Held = append(r.Held, g)
			r.Blocked = false
			if p.probe != nil {
				p.emit(obs.KindGrant, pid, g.Port, int64(len(r.Held)))
			}
			return true
		}
		r.Blocked = true
		if p.probe != nil {
			p.emit(obs.KindEnqueue, pid, -1, int64(len(r.Held)))
		}
		if p.disc == ReleaseAndRetry && len(r.Held) > 0 {
			dropped := int64(len(r.Held))
			for _, h := range r.Held {
				p.net.ReleaseResource(h)
				p.wasted++
			}
			r.Held = nil
			if p.probe != nil {
				p.emit(obs.KindReject, pid, -1, dropped)
			}
		}
		return false
	}
}

// Complete releases every resource of a satisfied request.
func (p *Pool) Complete(pid int) {
	r := p.reqs[pid]
	if r == nil || len(r.Held) != r.Need {
		panic("multireq: Complete on unsatisfied request")
	}
	for _, g := range r.Held {
		p.net.ReleaseResource(g)
		if p.probe != nil {
			p.emit(obs.KindRelease, pid, g.Port, 0)
		}
	}
	delete(p.reqs, pid)
}

// Satisfied reports whether pid's request holds everything it needs.
func (p *Pool) Satisfied(pid int) bool {
	r := p.reqs[pid]
	return r != nil && len(r.Held) == r.Need
}

// Outstanding returns the number of unfinished requests.
func (p *Pool) Outstanding() int { return len(p.reqs) }

// Deadlocked reports whether the pending requests are deadlocked: no
// request is satisfied, every request is blocked while holding a
// partial allocation (circular wait needs at least two holders), and a
// probe confirms that no pending request can acquire anything now.
func (p *Pool) Deadlocked() bool {
	if len(p.reqs) == 0 {
		return false
	}
	holders := 0
	for _, r := range p.reqs {
		if len(r.Held) == r.Need {
			return false // someone can complete and release
		}
		if !r.Blocked {
			return false // someone still has an untried move
		}
		if len(r.Held) > 0 {
			holders++
		}
	}
	if holders < 2 {
		return false
	}
	// Probe in sorted pid order: Acquire has network-policy side effects
	// (e.g. randomized port selection draws), so ranging over the map
	// directly would make the probe sequence depend on Go's map iteration
	// order and break run-to-run determinism.
	pids := make([]int, 0, len(p.reqs))
	for pid := range p.reqs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		if g, ok := p.net.Acquire(pid); ok {
			p.net.ReleasePath(g)
			p.net.ReleaseResource(g)
			return false
		}
	}
	return true
}
