package multireq

import (
	"testing"

	"rsin/internal/omega"
	"rsin/internal/rng"
)

// twoPortNet is the minimal deadlock plant: a single 2×2 interchange
// box with one resource behind each port.
func twoPortNet() *omega.Omega { return omega.New(2, 1) }

// driveDeadlock runs the canonical circular-wait schedule: P0 and P1
// each need both resources; P0 acquires first, then P1, then both
// retry.
func driveDeadlock(p *Pool) {
	p.Submit(0, 2)
	p.Submit(1, 2)
	p.Step(0) // P0 grabs one resource
	p.Step(1) // P1 grabs the other (hold-and-wait) or blocks (ordered)
	// Both keep retrying; under hold-and-wait neither can progress.
	for i := 0; i < 4; i++ {
		p.Step(0)
		p.Step(1)
	}
}

func TestHoldAndWaitDeadlocks(t *testing.T) {
	p := NewPool(twoPortNet(), HoldAndWait)
	driveDeadlock(p)
	if !p.Deadlocked() {
		t.Fatal("hold-and-wait with circular wait should deadlock")
	}
	if p.Satisfied(0) || p.Satisfied(1) {
		t.Fatal("no request should be satisfied in the deadlock")
	}
}

func TestOrderedAvoidsDeadlock(t *testing.T) {
	p := NewPool(twoPortNet(), OrderedAcquire)
	p.Submit(0, 2)
	p.Submit(1, 2)
	// Round-robin stepping with completion: everything must finish.
	done := 0
	for iter := 0; iter < 100 && done < 2; iter++ {
		for _, pid := range []int{0, 1} {
			if p.reqs[pid] == nil {
				continue
			}
			p.Step(pid)
			if p.Satisfied(pid) {
				p.Complete(pid)
				done++
			}
		}
		if p.Deadlocked() {
			t.Fatal("ordered discipline deadlocked")
		}
	}
	if done != 2 {
		t.Fatalf("only %d of 2 ordered requests completed", done)
	}
}

func TestReleaseAndRetryAvoidsDeadlockWithWaste(t *testing.T) {
	p := NewPool(twoPortNet(), ReleaseAndRetry)
	p.Submit(0, 2)
	p.Submit(1, 2)
	done := 0
	for iter := 0; iter < 200 && done < 2; iter++ {
		for _, pid := range []int{0, 1} {
			if p.reqs[pid] == nil {
				continue
			}
			p.Step(pid)
			if p.Satisfied(pid) {
				p.Complete(pid)
				done++
			}
		}
		if p.Deadlocked() {
			t.Fatal("release-and-retry deadlocked")
		}
	}
	if done != 2 {
		t.Fatalf("only %d of 2 requests completed", done)
	}
	if p.Wasted() == 0 {
		t.Error("expected wasted grants under contention (the overhead the paper warns about)")
	}
}

func TestSingleResourceRequestsNeverDeadlock(t *testing.T) {
	// The paper's studied case (one resource per request) is
	// deadlock-free under any discipline.
	for _, d := range []Discipline{HoldAndWait, OrderedAcquire, ReleaseAndRetry} {
		p := NewPool(omega.New(4, 1), d)
		for pid := 0; pid < 4; pid++ {
			p.Submit(pid, 1)
		}
		for pid := 0; pid < 4; pid++ {
			if !p.Step(pid) {
				t.Fatalf("%v: single-resource request %d blocked on idle network", d, pid)
			}
			if !p.Satisfied(pid) {
				t.Fatalf("%v: request %d unsatisfied", d, pid)
			}
			p.Complete(pid)
		}
		if p.Deadlocked() {
			t.Fatalf("%v: deadlock with single-resource requests", d)
		}
	}
}

func TestDeadlockDetectorNegatives(t *testing.T) {
	// Empty pool.
	p := NewPool(twoPortNet(), HoldAndWait)
	if p.Deadlocked() {
		t.Error("empty pool deadlocked")
	}
	// One satisfied request.
	p.Submit(0, 1)
	p.Step(0)
	if p.Deadlocked() {
		t.Error("satisfied request reported as deadlock")
	}
	p.Complete(0)
	// A single blocked holder is not circular wait.
	net := twoPortNet()
	q := NewPool(net, HoldAndWait)
	q.Submit(0, 2)
	q.Step(0)
	// Occupy the second resource externally so P0 blocks.
	g, ok := net.Acquire(1)
	if !ok {
		t.Fatal("external acquire failed")
	}
	net.ReleasePath(g)
	q.Step(0)
	if q.Deadlocked() {
		t.Error("single blocked holder reported as deadlock")
	}
}

func TestRandomizedDisciplineSoundness(t *testing.T) {
	// On a larger network with mixed needs: ordered and
	// release-and-retry always drain; hold-and-wait either drains or is
	// detected as deadlocked (never hangs undetected).
	src := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		for _, d := range []Discipline{HoldAndWait, OrderedAcquire, ReleaseAndRetry} {
			net := omega.New(8, 1)
			p := NewPool(net, d)
			n := 2 + src.Intn(3)
			for pid := 0; pid < n; pid++ {
				p.Submit(pid, 1+src.Intn(3))
			}
			drained := false
			for iter := 0; iter < 500; iter++ {
				progress := false
				for pid := 0; pid < n; pid++ {
					if p.reqs[pid] == nil {
						continue
					}
					if p.Step(pid) {
						progress = true
					}
					if p.Satisfied(pid) {
						p.Complete(pid)
						progress = true
					}
				}
				if p.Outstanding() == 0 {
					drained = true
					break
				}
				if !progress && p.Deadlocked() {
					break
				}
				if !progress && d != HoldAndWait {
					t.Fatalf("%v: stalled without deadlock (trial %d)", d, trial)
				}
			}
			if d != HoldAndWait && !drained {
				t.Fatalf("%v: did not drain (trial %d)", d, trial)
			}
			if drained && p.Deadlocked() {
				t.Fatalf("%v: drained pool reports deadlock", d)
			}
		}
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad need":   func() { NewPool(twoPortNet(), HoldAndWait).Submit(0, 0) },
		"dup submit": func() { p := NewPool(twoPortNet(), HoldAndWait); p.Submit(0, 1); p.Submit(0, 1) },
		"step stray": func() { NewPool(twoPortNet(), HoldAndWait).Step(3) },
		"bad done":   func() { p := NewPool(twoPortNet(), HoldAndWait); p.Submit(0, 2); p.Complete(0) },
		"need>ports": func() { NewPool(twoPortNet(), OrderedAcquire).Submit(0, 5) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestDisciplineStrings(t *testing.T) {
	if HoldAndWait.String() == "" || OrderedAcquire.String() != "ordered" ||
		ReleaseAndRetry.String() == "" || Discipline(9).String() == "" {
		t.Error("discipline strings wrong")
	}
}
