// Package core defines the resource-sharing interconnection network
// (RSIN) abstraction that is the paper's central contribution: a network
// between processors and a pool of identical resources in which a
// request carries no destination address — the network itself locates a
// free resource and establishes a circuit-switched connection to it.
//
// A Network implementation encapsulates one distributed scheduling
// discipline (single shared bus, crossbar of shared buses, Omega network
// with status propagation, …). The discrete-event engine in
// internal/sim drives any Network through the paper's workload model;
// the Partitioned combinator composes independent sub-networks into the
// paper's i×j×k configurations.
package core

import "fmt"

// Grant records one successful resource allocation: the circuit-switched
// connection from a processor to an output port, plus the reserved
// resource behind that port. The processor holds the network path for
// the duration of the task transmission and the resource for the
// duration of service; the two are released independently
// (paper Section II: the connection is broken after transmission while
// the resource continues processing).
type Grant struct {
	Processor int // requesting processor (global index)
	Port      int // output port the request was routed to (global index)
	Path      any // network-private path bookkeeping; owned by the issuing Network
}

// Network is a resource-sharing interconnection network supporting
// distributed scheduling of single-resource requests on one resource
// type (the system class the paper analyzes).
//
// Implementations are not safe for concurrent use; the discrete-event
// engine is single-threaded, mirroring the paper's global-time Markov
// and simulation models.
type Network interface {
	// Acquire attempts to connect processor pid to any free resource
	// reachable through the network. On success it reserves the
	// resource, holds the path, and returns the grant. It fails when
	// every reachable resource is busy or every path is blocked —
	// the two blockage sources the paper distinguishes.
	Acquire(pid int) (Grant, bool)

	// ReleasePath tears down the network path of g after task
	// transmission completes. The reserved resource transitions from
	// "reserved for transmission" to "serving".
	ReleasePath(g Grant)

	// ReleaseResource frees g's resource after service completes.
	ReleaseResource(g Grant)

	// Processors returns the number of processor (input) connections.
	Processors() int

	// Ports returns the number of output ports.
	Ports() int

	// TotalResources returns the number of resources behind all ports.
	TotalResources() int

	// Name returns a short human-readable description of the network.
	Name() string
}

// Telemetry holds optional counters a Network may expose for the
// experiments: blockage accounting and routing effort.
type Telemetry struct {
	Attempts      int64 // Acquire calls
	Failures      int64 // Acquire calls returning false
	ResourceBlock int64 // failures with every reachable resource busy
	PathBlock     int64 // failures caused by network-path blockage only
	Rejects       int64 // in-network rejects (Omega backtracks)
	BoxVisits     int64 // interchange boxes traversed by granted requests
	Grants        int64 // successful Acquires
}

// TelemetrySource is implemented by networks that collect Telemetry.
type TelemetrySource interface {
	Telemetry() Telemetry
}

// AvailabilityHinter is an optional Network extension that lets the
// discrete-event engine's incremental wake path skip hopeless retries
// cheaply. It models the paper's status broadcast: a processor consults
// the broadcast availability bits before re-asserting a request, and
// stays quiet when the status says nothing is reachable.
//
// AcquireWouldFail reports whether an Acquire(pid) issued right now is
// certain to fail without entering the network. The contract is strict,
// because the engine's results must stay bit-for-bit identical to a
// full Acquire probe:
//
//   - When it returns true, the implementation must have updated its
//     telemetry exactly as the corresponding failed Acquire would have
//     (the engine will not call Acquire).
//   - When it returns false, the engine calls Acquire normally, which
//     may still fail — e.g. on in-network path blockage the aggregate
//     status bits cannot see. The call must leave telemetry untouched
//     in this case.
//
// Implementations are expected to answer in O(1) from incrementally
// maintained state; that is the whole point of the interface, since the
// failure paths it short-circuits are O(ports) scans on the crossbar
// and Omega networks.
type AvailabilityHinter interface {
	AcquireWouldFail(pid int) bool
}

// NamedCounter is one fine-grained telemetry counter exposed by a
// network: a stable name (used as a metrics key, so it must be
// deterministic across runs) and its value.
type NamedCounter struct {
	Name  string
	Value int64
}

// DetailSource is implemented by networks that expose fine-grained
// counters beyond the aggregate Telemetry struct — per-stage rejects,
// per-port grants, scan effort. The returned slice must be ordered
// deterministically (by construction, not by map iteration).
type DetailSource interface {
	DetailCounters() []NamedCounter
}

// Partitioned composes i independent sub-networks into one system, the
// paper's p/i×j×k notation: processors are assigned to sub-networks in
// contiguous blocks of j = p/i, and each sub-network owns its own output
// ports and resources. Requests never cross partitions — exactly the
// isolation that makes the paper's per-bus analysis of partitioned
// systems exact.
type Partitioned struct {
	subs     []Network
	hinters  []AvailabilityHinter // parallel to subs; nil entry = no hint
	perSub   int                  // processors per sub-network
	ports    int
	resTotal int
	name     string

	portBase []int // cumulative port offset of each partition
	// grantPool recycles partGrant records so steady-state Acquire does
	// not allocate. A record returns to the pool at ReleaseResource: the
	// engine's task lifecycle releases the path at transmit end and the
	// resource at service end, so the resource release is always the
	// grant's final use.
	grantPool []*partGrant
}

// NewPartitioned builds a partitioned system from identical
// sub-networks. All sub-networks must have the same processor count.
func NewPartitioned(subs []Network) *Partitioned {
	if len(subs) == 0 {
		panic("core: NewPartitioned requires at least one sub-network")
	}
	per := subs[0].Processors()
	ports, res := 0, 0
	portBase := make([]int, len(subs))
	for i, s := range subs {
		if s.Processors() != per {
			panic("core: sub-networks must have identical processor counts")
		}
		portBase[i] = ports
		ports += s.Ports()
		res += s.TotalResources()
	}
	hinters := make([]AvailabilityHinter, len(subs))
	for i, s := range subs {
		hinters[i], _ = s.(AvailabilityHinter)
	}
	return &Partitioned{
		subs:     subs,
		hinters:  hinters,
		perSub:   per,
		ports:    ports,
		resTotal: res,
		name:     fmt.Sprintf("%dx(%s)", len(subs), subs[0].Name()),
		portBase: portBase,
	}
}

// partGrant wraps a sub-network grant with its partition index.
type partGrant struct {
	sub   int
	inner Grant
}

// Acquire implements Network by delegating to pid's partition.
//
//lint:hotpath called once per allocation attempt in the event loop
func (p *Partitioned) Acquire(pid int) (Grant, bool) {
	sub := pid / p.perSub
	if sub < 0 || sub >= len(p.subs) {
		panic(fmt.Sprintf("core: processor %d outside partitioned system", pid))
	}
	g, ok := p.subs[sub].Acquire(pid % p.perSub)
	if !ok {
		return Grant{}, false
	}
	var pg *partGrant
	if n := len(p.grantPool); n > 0 {
		pg = p.grantPool[n-1]
		p.grantPool = p.grantPool[:n-1]
	} else {
		//lint:ignore hotalloc cold-pool mint, amortized to zero once the pool warms; pinned by TestRunSteadyStateZeroAlloc
		pg = new(partGrant)
	}
	pg.sub, pg.inner = sub, g
	return Grant{
		Processor: pid,
		Port:      p.portBase[sub] + g.Port,
		Path:      pg,
	}, true
}

// AcquireWouldFail implements AvailabilityHinter by consulting pid's
// own partition: requests never cross partitions, so a release in one
// sub-network can only unblock that sub-network's processors — this is
// exactly the retry-set narrowing the engine wants. A sub-network
// without a hint answers false (the engine falls back to Acquire).
//
//lint:hotpath probed by every wake pass
func (p *Partitioned) AcquireWouldFail(pid int) bool {
	sub := pid / p.perSub
	if sub < 0 || sub >= len(p.subs) {
		panic(fmt.Sprintf("core: processor %d outside partitioned system", pid))
	}
	if h := p.hinters[sub]; h != nil {
		return h.AcquireWouldFail(pid % p.perSub)
	}
	return false
}

// ReleasePath implements Network.
//
//lint:hotpath
func (p *Partitioned) ReleasePath(g Grant) {
	pg := g.Path.(*partGrant)
	p.subs[pg.sub].ReleasePath(pg.inner)
}

// ReleaseResource implements Network. This is the grant's final use
// (see grantPool), so the partGrant record is recycled here.
//
//lint:hotpath
func (p *Partitioned) ReleaseResource(g Grant) {
	pg := g.Path.(*partGrant)
	p.subs[pg.sub].ReleaseResource(pg.inner)
	//lint:ignore hotalloc pool append reuses capacity after warm-up; pinned by TestRunSteadyStateZeroAlloc
	p.grantPool = append(p.grantPool, pg)
}

// Processors implements Network.
func (p *Partitioned) Processors() int { return p.perSub * len(p.subs) }

// Ports implements Network.
func (p *Partitioned) Ports() int { return p.ports }

// TotalResources implements Network.
func (p *Partitioned) TotalResources() int { return p.resTotal }

// Name implements Network.
func (p *Partitioned) Name() string { return p.name }

// Telemetry aggregates telemetry across partitions that expose it.
func (p *Partitioned) Telemetry() Telemetry {
	var t Telemetry
	for _, s := range p.subs {
		if ts, ok := s.(TelemetrySource); ok {
			st := ts.Telemetry()
			t.Attempts += st.Attempts
			t.Failures += st.Failures
			t.ResourceBlock += st.ResourceBlock
			t.PathBlock += st.PathBlock
			t.Rejects += st.Rejects
			t.BoxVisits += st.BoxVisits
			t.Grants += st.Grants
		}
	}
	return t
}

// DetailCounters aggregates fine-grained counters across partitions,
// prefixing each name with its partition index so per-partition load
// imbalance stays visible.
func (p *Partitioned) DetailCounters() []NamedCounter {
	var out []NamedCounter
	for i, s := range p.subs {
		if ds, ok := s.(DetailSource); ok {
			for _, c := range ds.DetailCounters() {
				out = append(out, NamedCounter{
					Name:  fmt.Sprintf("sub%02d.%s", i, c.Name),
					Value: c.Value,
				})
			}
		}
	}
	return out
}

var _ Network = (*Partitioned)(nil)
var _ TelemetrySource = (*Partitioned)(nil)
var _ DetailSource = (*Partitioned)(nil)
var _ AvailabilityHinter = (*Partitioned)(nil)
