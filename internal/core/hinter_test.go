package core_test

import (
	"testing"

	"rsin/internal/bus"
	"rsin/internal/core"
)

// plainNet is a Network that does not implement AvailabilityHinter.
type plainNet struct{ granted bool }

func (n *plainNet) Acquire(pid int) (core.Grant, bool) {
	if n.granted {
		return core.Grant{}, false
	}
	n.granted = true
	return core.Grant{Processor: pid}, true
}
func (n *plainNet) ReleasePath(core.Grant)     {}
func (n *plainNet) ReleaseResource(core.Grant) {}
func (n *plainNet) Processors() int            { return 2 }
func (n *plainNet) Ports() int                 { return 1 }
func (n *plainNet) TotalResources() int        { return 1 }
func (n *plainNet) Name() string               { return "plain" }

// TestPartitionedAvailabilityHint checks the per-partition delegation:
// the hint consults only pid's own sub-network, and its telemetry
// accounting lands on that sub-network exactly as a failed Acquire
// would.
func TestPartitionedAvailabilityHint(t *testing.T) {
	mk := func() *core.Partitioned {
		return core.NewPartitioned([]core.Network{bus.New(2, 1), bus.New(2, 1)})
	}
	a, b := mk(), mk()
	// Saturate partition 0 (processors 0–1) on both systems.
	a.Acquire(0)
	b.Acquire(0)
	if _, ok := a.Acquire(1); ok {
		t.Fatal("acquire on a saturated partition succeeded")
	}
	if !b.AcquireWouldFail(1) {
		t.Fatal("hint said a saturated partition could grant")
	}
	if a.Telemetry() != b.Telemetry() {
		t.Errorf("partitioned telemetry diverged:\nacquire %+v\nhint    %+v", a.Telemetry(), b.Telemetry())
	}
	// Partition 1 (processors 2–3) is untouched and must stay hintable.
	if b.AcquireWouldFail(2) {
		t.Error("hint condemned an idle partition")
	}

	// A partition whose sub-network has no hint answers false: the
	// engine falls back to the real Acquire.
	mixed := core.NewPartitioned([]core.Network{&plainNet{granted: true}})
	if mixed.AcquireWouldFail(0) {
		t.Error("hint-less sub-network reported a certain failure")
	}
}
