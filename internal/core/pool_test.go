package core_test

import (
	"testing"

	"rsin/internal/bus"
	"rsin/internal/core"
	"rsin/internal/crossbar"
)

// TestPartitionedPortOffsets pins the precomputed per-partition port
// bases: a grant from partition i must report a global port index in
// [i·m, (i+1)·m) and the same local port the sub-network granted.
func TestPartitionedPortOffsets(t *testing.T) {
	const subsN, ports = 4, 8
	subs := make([]core.Network, subsN)
	for i := range subs {
		subs[i] = crossbar.New(4, ports, 1)
	}
	p := core.NewPartitioned(subs)
	for i := 0; i < subsN; i++ {
		pid := i * 4 // first processor of partition i
		g, ok := p.Acquire(pid)
		if !ok {
			t.Fatalf("partition %d acquire failed on an idle system", i)
		}
		// FirstFree latches local port 0, so the global index is the base.
		if g.Port != i*ports {
			t.Errorf("partition %d granted global port %d, want %d", i, g.Port, i*ports)
		}
		p.ReleasePath(g)
		p.ReleaseResource(g)
	}
}

// TestPartitionedGrantRecycling pins the partGrant pool: once a
// grant's resource is released, a subsequent acquire/release cycle
// must not allocate — the record is recycled, keeping the large-p
// partitioned configurations inside the kernel's steady-state
// zero-allocation budget.
func TestPartitionedGrantRecycling(t *testing.T) {
	p := core.NewPartitioned([]core.Network{bus.New(2, 4), bus.New(2, 4)})
	// Warm the pool: one full cycle per partition.
	for pid := 0; pid < 4; pid += 2 {
		g, ok := p.Acquire(pid)
		if !ok {
			t.Fatalf("warm acquire %d failed", pid)
		}
		p.ReleasePath(g)
		p.ReleaseResource(g)
	}
	if avg := testing.AllocsPerRun(200, func() {
		for pid := 0; pid < 4; pid += 2 {
			g, ok := p.Acquire(pid)
			if !ok {
				t.Fatal("acquire failed on an idle system")
			}
			p.ReleasePath(g)
			p.ReleaseResource(g)
		}
	}); avg != 0 {
		t.Errorf("partitioned acquire/release cycle allocates %g allocs/run, want 0", avg)
	}
}

// TestPartitionedGrantReleaseOrder checks that recycled grants keep
// routing releases to the right partition: interleaved lifecycles
// across partitions must release the bus and resource of the partition
// that granted them, never a neighbor's.
func TestPartitionedGrantReleaseOrder(t *testing.T) {
	p := core.NewPartitioned([]core.Network{bus.New(2, 1), bus.New(2, 1)})
	// Exhaust both partitions (1 resource each), then release in the
	// opposite order and reacquire.
	g0, ok0 := p.Acquire(0)
	g1, ok1 := p.Acquire(2)
	if !ok0 || !ok1 {
		t.Fatal("initial acquires failed")
	}
	if _, ok := p.Acquire(1); ok {
		t.Fatal("partition 0 should be exhausted")
	}
	p.ReleasePath(g1)
	p.ReleaseResource(g1)
	if _, ok := p.Acquire(1); ok {
		t.Fatal("partition 1's release must not free partition 0")
	}
	g3, ok := p.Acquire(3)
	if !ok {
		t.Fatal("partition 1 should be free again")
	}
	p.ReleasePath(g0)
	p.ReleaseResource(g0)
	p.ReleasePath(g3)
	p.ReleaseResource(g3)
}
