package core_test

import (
	"rsin/internal/core"
	"testing"

	"rsin/internal/bus"
)

func newTwoBusSystem() *core.Partitioned {
	return core.NewPartitioned([]core.Network{bus.New(2, 3), bus.New(2, 3)})
}

func TestPartitionedAccessors(t *testing.T) {
	p := newTwoBusSystem()
	if p.Processors() != 4 {
		t.Errorf("Processors = %d, want 4", p.Processors())
	}
	if p.Ports() != 2 {
		t.Errorf("Ports = %d, want 2", p.Ports())
	}
	if p.TotalResources() != 6 {
		t.Errorf("TotalResources = %d, want 6", p.TotalResources())
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestPartitionedIsolation(t *testing.T) {
	p := newTwoBusSystem()
	// Processor 0 holds partition 0's bus; processor 2 (partition 1)
	// must be unaffected.
	g0, ok := p.Acquire(0)
	if !ok {
		t.Fatal("acquire failed")
	}
	if _, ok := p.Acquire(1); ok {
		t.Error("same-partition acquire should block on busy bus")
	}
	g2, ok := p.Acquire(2)
	if !ok {
		t.Error("other-partition acquire should succeed")
	}
	// Global port indices must be distinct across partitions.
	if g0.Port == g2.Port {
		t.Errorf("port collision across partitions: %d", g0.Port)
	}
	if g2.Port != 1 {
		t.Errorf("partition-1 port = %d, want 1", g2.Port)
	}
	p.ReleasePath(g0)
	p.ReleasePath(g2)
	p.ReleaseResource(g0)
	p.ReleaseResource(g2)
}

func TestPartitionedReleaseRouting(t *testing.T) {
	p := newTwoBusSystem()
	g, _ := p.Acquire(3) // partition 1
	p.ReleasePath(g)
	// Partition 1's bus is free again.
	if _, ok := p.Acquire(2); !ok {
		t.Error("partition-1 bus should be free after release")
	}
	p.ReleaseResource(g)
}

func TestPartitionedTelemetryAggregation(t *testing.T) {
	p := newTwoBusSystem()
	p.Acquire(0)
	p.Acquire(2)
	p.Acquire(1) // blocked
	tel := p.Telemetry()
	if tel.Grants != 2 {
		t.Errorf("Grants = %d, want 2", tel.Grants)
	}
	if tel.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", tel.Attempts)
	}
	if tel.Failures != 1 {
		t.Errorf("Failures = %d, want 1", tel.Failures)
	}
}

func TestPartitionedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":          func() { core.NewPartitioned(nil) },
		"mismatched":     func() { core.NewPartitioned([]core.Network{bus.New(2, 1), bus.New(3, 1)}) },
		"pid out of set": func() { newTwoBusSystem().Acquire(99) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}
