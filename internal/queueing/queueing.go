// Package queueing provides the closed-form queueing formulas the paper
// uses as degenerate-case baselines for the single shared bus (Section
// III): the M/M/1 queue (bus-bound limit: transmission dominates and
// resources are plentiful) and the M/M/r queue (resource-bound limit:
// the bus overhead is negligible). It also defines the paper's
// normalized traffic intensity ρ and the delay normalization used in
// Figs. 4–13.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is returned when a queue's utilization is ≥ 1 so no
// steady state exists.
var ErrUnstable = errors.New("queueing: system is unstable (utilization >= 1)")

// MM1WaitingTime returns the mean time in queue (excluding service) for
// an M/M/1 queue with arrival rate lambda and service rate mu:
// Wq = ρ/(μ−λ) with ρ = λ/μ.
func MM1WaitingTime(lambda, mu float64) (float64, error) {
	if lambda < 0 || mu <= 0 {
		return 0, errors.New("queueing: rates must be positive")
	}
	rho := lambda / mu
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return rho / (mu - lambda), nil
}

// MM1ResponseTime returns the mean time in system for an M/M/1 queue.
func MM1ResponseTime(lambda, mu float64) (float64, error) {
	if mu <= 0 {
		return 0, errors.New("queueing: service rate must be positive")
	}
	wq, err := MM1WaitingTime(lambda, mu)
	if err != nil {
		return 0, err
	}
	return wq + 1/mu, nil
}

// ErlangC returns the probability that an arriving customer must wait in
// an M/M/c queue with offered load a = λ/μ and c servers.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 || a < 0 {
		return 0, errors.New("queueing: invalid Erlang-C parameters")
	}
	if a >= float64(c) {
		return 0, ErrUnstable
	}
	// Compute iteratively in log-free form to avoid overflow:
	// B(0)=1; B(k) = a·B(k−1)/(k + a·B(k−1)) is Erlang-B recursion,
	// then C = B/(1 − ρ(1−B)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b)), nil
}

// MMcWaitingTime returns the mean time in queue for an M/M/c queue with
// arrival rate lambda and per-server service rate mu.
func MMcWaitingTime(lambda, mu float64, c int) (float64, error) {
	if mu <= 0 {
		return 0, errors.New("queueing: service rate must be positive")
	}
	a := lambda / mu
	pw, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	return pw / (float64(c)*mu - lambda), nil
}

// MMcResponseTime returns the mean time in system for an M/M/c queue.
func MMcResponseTime(lambda, mu float64, c int) (float64, error) {
	if mu <= 0 {
		return 0, errors.New("queueing: service rate must be positive")
	}
	wq, err := MMcWaitingTime(lambda, mu, c)
	if err != nil {
		return 0, err
	}
	return wq + 1/mu, nil
}

// TrafficIntensity returns the paper's normalized traffic intensity for
// a system of p processors with per-processor arrival rate λ, total
// resource count totalRes, transmission rate μn and service rate μs:
//
//	ρ = p·λ·( 1/(p·μn) + 1/(totalRes·μs) )
//
// i.e. the utilization of a hypothetical single bus of rate p·μn feeding
// a single resource of rate totalRes·μs (Section III, Figs. 4–5).
func TrafficIntensity(p int, lambda, muN, muS float64, totalRes int) float64 {
	return float64(p) * lambda * (1/(float64(p)*muN) + 1/(float64(totalRes)*muS))
}

// LambdaForIntensity inverts TrafficIntensity: it returns the
// per-processor arrival rate λ that produces traffic intensity rho.
func LambdaForIntensity(rho float64, p int, muN, muS float64, totalRes int) float64 {
	denom := float64(p) * (1/(float64(p)*muN) + 1/(float64(totalRes)*muS))
	if denom <= 0 || math.IsNaN(denom) {
		panic(fmt.Sprintf("queueing: non-positive intensity denominator %g (p=%d muN=%g muS=%g totalRes=%d)",
			denom, p, muN, muS, totalRes))
	}
	return rho / denom
}

// NormalizeDelay converts a raw queueing delay d into the paper's
// normalized delay d·μs (delay in units of mean service time).
func NormalizeDelay(d, muS float64) float64 { return d * muS }

// LittleL returns the mean number in system via Little's law L = λ·W.
func LittleL(lambda, w float64) float64 { return lambda * w }

// SaturationIntensity returns the traffic intensity at which a
// configuration with k partitions saturates, assuming each partition is
// a single bus serving p/k processors with R/k resources. The partition
// saturates when either its bus (rate μn) or its resource pool
// (rate (R/k)·μs) is fully utilized by the partition's arrival stream
// (p/k)·λ; the binding constraint is the smaller capacity.
func SaturationIntensity(p, totalRes, k int, muN, muS float64) float64 {
	if p <= 0 || totalRes <= 0 || k <= 0 {
		panic(fmt.Sprintf("queueing: SaturationIntensity requires positive counts, got p=%d totalRes=%d k=%d", p, totalRes, k))
	}
	pPart := float64(p) / float64(k)
	rPart := float64(totalRes) / float64(k)
	if pPart <= 0 {
		panic("queueing: empty partition") // unreachable: p, k > 0
	}
	// λ limits: bus: pPart·λ < μn ; resources: pPart·λ < rPart·μs.
	lamBus := muN / pPart
	lamRes := rPart * muS / pPart
	lam := math.Min(lamBus, lamRes)
	return TrafficIntensity(p, lam, muN, muS, totalRes)
}
