package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b)) }

func TestMM1Known(t *testing.T) {
	// λ=0.5, μ=1: ρ=0.5, Wq = 0.5/(1−0.5)/1 = 1.
	wq, err := MM1WaitingTime(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !close(wq, 1, 1e-12) {
		t.Errorf("Wq = %v, want 1", wq)
	}
	w, err := MM1ResponseTime(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !close(w, 2, 1e-12) {
		t.Errorf("W = %v, want 2", w)
	}
}

func TestMM1Unstable(t *testing.T) {
	if _, err := MM1WaitingTime(1, 1); err != ErrUnstable {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
	if _, err := MM1WaitingTime(2, 1); err != ErrUnstable {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
}

func TestMM1InvalidRates(t *testing.T) {
	if _, err := MM1WaitingTime(-1, 1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := MM1WaitingTime(1, 0); err == nil {
		t.Error("zero mu accepted")
	}
}

func TestErlangCSingleServerIsRho(t *testing.T) {
	// With c=1, the Erlang-C waiting probability equals ρ.
	if err := quick.Check(func(x uint8) bool {
		rho := float64(x%99+1) / 100
		pw, err := ErlangC(1, rho)
		return err == nil && close(pw, rho, 1e-10)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Classic table value: c=2, a=1 → C = 1/3.
	pw, err := ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !close(pw, 1.0/3.0, 1e-9) {
		t.Errorf("ErlangC(2,1) = %v, want 1/3", pw)
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	wq1, err1 := MM1WaitingTime(0.7, 1)
	wqc, errc := MMcWaitingTime(0.7, 1, 1)
	if err1 != nil || errc != nil {
		t.Fatal(err1, errc)
	}
	if !close(wq1, wqc, 1e-10) {
		t.Errorf("M/M/1 via both paths: %v vs %v", wq1, wqc)
	}
}

func TestMMcUnstable(t *testing.T) {
	if _, err := MMcWaitingTime(2, 1, 2); err != ErrUnstable {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
}

func TestMMcMoreServersLessWaiting(t *testing.T) {
	prev := math.Inf(1)
	for c := 1; c <= 8; c++ {
		wq, err := MMcWaitingTime(0.9, 1, c)
		if err != nil {
			t.Fatal(err)
		}
		if wq >= prev {
			t.Errorf("c=%d: Wq %v not below %v", c, wq, prev)
		}
		prev = wq
	}
}

func TestResponseTimeErrorPaths(t *testing.T) {
	if _, err := MM1ResponseTime(2, 1); err != ErrUnstable {
		t.Errorf("MM1ResponseTime overload: %v", err)
	}
	if _, err := MMcResponseTime(5, 1, 2); err != ErrUnstable {
		t.Errorf("MMcResponseTime overload: %v", err)
	}
	w, err := MMcResponseTime(0.5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	wq, _ := MMcWaitingTime(0.5, 1, 2)
	if w != wq+1 {
		t.Errorf("MMcResponseTime %v != Wq+1/μ %v", w, wq+1)
	}
}

func TestErlangCInvalid(t *testing.T) {
	if _, err := ErlangC(0, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := ErlangC(2, -1); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := MMcWaitingTime(1, 0, 2); err == nil {
		t.Error("zero service rate accepted")
	}
}

func TestTrafficIntensityPaperDefinition(t *testing.T) {
	// ρ = 16λ(1/(16μn) + 1/(32μs)) for the canonical 16-processor,
	// 32-resource plant of Figs. 4–13.
	lam, muN, muS := 0.05, 1.0, 0.1
	got := TrafficIntensity(16, lam, muN, muS, 32)
	want := 16 * lam * (1/(16*muN) + 1/(32*muS))
	if !close(got, want, 1e-12) {
		t.Errorf("rho = %v, want %v", got, want)
	}
}

func TestLambdaForIntensityRoundTrip(t *testing.T) {
	if err := quick.Check(func(x uint8) bool {
		rho := float64(x%90+1) / 100
		lam := LambdaForIntensity(rho, 16, 1, 0.1, 32)
		back := TrafficIntensity(16, lam, 1, 0.1, 32)
		return close(back, rho, 1e-10)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeDelay(t *testing.T) {
	if got := NormalizeDelay(2.5, 0.4); !close(got, 1.0, 1e-12) {
		t.Errorf("NormalizeDelay = %v, want 1", got)
	}
}

func TestLittleL(t *testing.T) {
	if got := LittleL(2, 3); got != 6 {
		t.Errorf("LittleL = %v, want 6", got)
	}
}

func TestSaturationIntensity(t *testing.T) {
	// One partition, 16 processors, 32 resources, μs/μn = 0.1: the bus
	// (capacity μn = 1 vs pool 3.2) binds; λ* = 1/16 and
	// ρ* = 1·(1) + 16·(1/16)/(3.2) … computed via TrafficIntensity.
	got := SaturationIntensity(16, 32, 1, 1, 0.1)
	lamStar := 1.0 / 16
	want := TrafficIntensity(16, lamStar, 1, 0.1, 32)
	if !close(got, want, 1e-12) {
		t.Errorf("saturation rho = %v, want %v", got, want)
	}
	// More partitions raise the naive saturation point when the bus
	// binds.
	if SaturationIntensity(16, 32, 2, 1, 0.1) <= got {
		t.Error("partitioning should relieve the shared-bus bottleneck")
	}
}
