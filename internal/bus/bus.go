// Package bus implements the single-shared-bus RSIN of paper Section
// III: p processors time-share one bus that feeds r identical resources
// on a single output port.
//
// Status information (the count of free resources) is broadcast on the
// bus to every processor, so a processor attempts transmission exactly
// when the bus is idle and at least one resource is free; an arbitrator
// picks one winner when several processors contend (the arbitration
// order is the engine's WakePolicy). The bus is held for the duration of
// the task transmission; the resource is reserved at allocation time and
// released only when service completes, matching the Markov model in
// internal/markov (whose states never show a transmission in progress
// with zero free resources).
package bus

import (
	"fmt"

	"rsin/internal/core"
)

// Bus is a single shared bus with r resources on its one output port.
type Bus struct {
	processors int
	resources  int

	busBusy bool
	free    int
	tel     core.Telemetry
}

// New returns a bus connecting processors processors to resources
// resources.
func New(processors, resources int) *Bus {
	if processors <= 0 || resources <= 0 {
		panic(fmt.Sprintf("bus: invalid shape %d processors, %d resources", processors, resources))
	}
	return &Bus{processors: processors, resources: resources, free: resources}
}

// Acquire implements core.Network. It succeeds when the bus is idle and
// a free resource exists, reserving both.
//
//lint:hotpath called once per allocation attempt in the event loop
func (b *Bus) Acquire(pid int) (core.Grant, bool) {
	if pid < 0 || pid >= b.processors {
		panic(fmt.Sprintf("bus: processor %d out of range", pid))
	}
	b.tel.Attempts++
	if b.busBusy || b.free == 0 {
		b.tel.Failures++
		if b.free == 0 {
			b.tel.ResourceBlock++
		} else {
			b.tel.PathBlock++
		}
		return core.Grant{}, false
	}
	b.busBusy = true
	b.free--
	b.tel.Grants++
	return core.Grant{Processor: pid, Port: 0}, true
}

// AcquireWouldFail implements core.AvailabilityHinter: the bus's
// broadcast status (bus idle, free-resource count) decides every
// Acquire outcome outright, so the hint is exact. A hopeless probe is
// accounted in telemetry exactly as Acquire's failure path would have,
// per the interface contract.
//
//lint:hotpath probed by every wake pass
func (b *Bus) AcquireWouldFail(pid int) bool {
	if pid < 0 || pid >= b.processors {
		panic(fmt.Sprintf("bus: processor %d out of range", pid))
	}
	if !b.busBusy && b.free > 0 {
		return false
	}
	b.tel.Attempts++
	b.tel.Failures++
	if b.free == 0 {
		b.tel.ResourceBlock++
	} else {
		b.tel.PathBlock++
	}
	return true
}

// ReleasePath implements core.Network: transmission finished, the bus
// becomes free while the resource starts service.
//
//lint:hotpath
func (b *Bus) ReleasePath(core.Grant) {
	if !b.busBusy {
		panic("bus: ReleasePath with idle bus")
	}
	b.busBusy = false
}

// ReleaseResource implements core.Network: service finished.
//
//lint:hotpath
func (b *Bus) ReleaseResource(core.Grant) {
	if b.free >= b.resources {
		panic("bus: ReleaseResource overflow")
	}
	b.free++
}

// Processors implements core.Network.
func (b *Bus) Processors() int { return b.processors }

// Ports implements core.Network.
func (b *Bus) Ports() int { return 1 }

// TotalResources implements core.Network.
func (b *Bus) TotalResources() int { return b.resources }

// Name implements core.Network.
func (b *Bus) Name() string {
	return fmt.Sprintf("SBUS(p=%d,r=%d)", b.processors, b.resources)
}

// Telemetry implements core.TelemetrySource.
func (b *Bus) Telemetry() core.Telemetry { return b.tel }

// FreeResources reports the current number of unreserved resources —
// the status count the bus broadcasts to its processors.
func (b *Bus) FreeResources() int { return b.free }

// Busy reports whether a transmission currently holds the bus.
func (b *Bus) Busy() bool { return b.busBusy }

var _ core.Network = (*Bus)(nil)
var _ core.TelemetrySource = (*Bus)(nil)
var _ core.AvailabilityHinter = (*Bus)(nil)
