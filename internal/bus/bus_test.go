package bus

import (
	"testing"

	"rsin/internal/core"
)

func TestLifecycle(t *testing.T) {
	b := New(2, 2)
	g1, ok := b.Acquire(0)
	if !ok {
		t.Fatal("first acquire should succeed")
	}
	if g1.Port != 0 {
		t.Errorf("Port = %d, want 0", g1.Port)
	}
	// Bus held: second acquire fails even though a resource is free.
	if _, ok := b.Acquire(1); ok {
		t.Fatal("acquire should fail while bus is held")
	}
	if b.FreeResources() != 1 {
		t.Errorf("FreeResources = %d, want 1", b.FreeResources())
	}
	b.ReleasePath(g1)
	if b.Busy() {
		t.Error("bus should be idle after ReleasePath")
	}
	// Resource still reserved.
	if b.FreeResources() != 1 {
		t.Errorf("FreeResources = %d, want 1", b.FreeResources())
	}
	g2, ok := b.Acquire(1)
	if !ok {
		t.Fatal("acquire should succeed after path release")
	}
	b.ReleasePath(g2)
	// All resources reserved now.
	if _, ok := b.Acquire(0); ok {
		t.Fatal("acquire should fail with all resources reserved")
	}
	b.ReleaseResource(g1)
	if b.FreeResources() != 1 {
		t.Errorf("FreeResources = %d, want 1", b.FreeResources())
	}
	if _, ok := b.Acquire(0); !ok {
		t.Fatal("acquire should succeed after resource release")
	}
}

func TestTelemetryBlockageClassification(t *testing.T) {
	b := New(2, 1)
	g, _ := b.Acquire(0)
	if _, ok := b.Acquire(1); ok {
		t.Fatal("should block")
	}
	tel := b.Telemetry()
	if tel.ResourceBlock != 1 {
		t.Errorf("ResourceBlock = %d, want 1 (resource reserved)", tel.ResourceBlock)
	}
	b.ReleasePath(g)
	// Resource still busy, bus free: still a resource block.
	if _, ok := b.Acquire(1); ok {
		t.Fatal("should block")
	}
	tel = b.Telemetry()
	if tel.ResourceBlock != 2 {
		t.Errorf("ResourceBlock = %d, want 2", tel.ResourceBlock)
	}
	b.ReleaseResource(g)
	g2, _ := b.Acquire(1)
	_ = g2
	// Bus busy with one more resource? r=1 so resource blocked again;
	// use a two-resource bus to see a path block.
	b2 := New(2, 2)
	b2.Acquire(0)
	if _, ok := b2.Acquire(1); ok {
		t.Fatal("should block on busy bus")
	}
	if got := b2.Telemetry().PathBlock; got != 1 {
		t.Errorf("PathBlock = %d, want 1", got)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	for name, f := range map[string]func(){
		"bad shape":        func() { New(0, 1) },
		"bad pid":          func() { New(1, 1).Acquire(5) },
		"double path free": func() { b := New(1, 1); g, _ := b.Acquire(0); b.ReleasePath(g); b.ReleasePath(g) },
		"res overflow":     func() { b := New(1, 1); b.ReleaseResource(core.Grant{}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestAccessors(t *testing.T) {
	b := New(4, 3)
	if b.Processors() != 4 || b.Ports() != 1 || b.TotalResources() != 3 {
		t.Errorf("accessors wrong: %d %d %d", b.Processors(), b.Ports(), b.TotalResources())
	}
	if b.Name() == "" {
		t.Error("empty name")
	}
}
