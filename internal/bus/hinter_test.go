package bus

import "testing"

// TestAcquireWouldFailTelemetryExact pins the core.AvailabilityHinter
// contract: a true answer must leave telemetry exactly as the failed
// Acquire would have, and a false answer must not touch it.
func TestAcquireWouldFailTelemetryExact(t *testing.T) {
	// Drive two identical buses into the same state, then fail one via
	// Acquire and the other via the hint.
	drive := func() (*Bus, *Bus) { return New(2, 1), New(2, 1) }

	// Path block: bus held, resource count irrelevant.
	a, b := drive()
	if _, ok := a.Acquire(0); !ok {
		t.Fatal("setup grant failed")
	}
	b.Acquire(0)
	if _, ok := a.Acquire(1); ok {
		t.Fatal("acquire on a busy bus succeeded")
	}
	if !b.AcquireWouldFail(1) {
		t.Fatal("hint said a busy bus could grant")
	}
	if a.Telemetry() != b.Telemetry() {
		t.Errorf("path-block telemetry diverged:\nacquire %+v\nhint    %+v", a.Telemetry(), b.Telemetry())
	}

	// Resource block: bus released, zero free resources.
	a2, b2 := drive()
	g1, _ := a2.Acquire(0)
	g2, _ := b2.Acquire(0)
	a2.ReleasePath(g1)
	b2.ReleasePath(g2)
	if _, ok := a2.Acquire(1); ok {
		t.Fatal("acquire with zero free resources succeeded")
	}
	if !b2.AcquireWouldFail(1) {
		t.Fatal("hint said zero free resources could grant")
	}
	if a2.Telemetry() != b2.Telemetry() {
		t.Errorf("resource-block telemetry diverged:\nacquire %+v\nhint    %+v", a2.Telemetry(), b2.Telemetry())
	}

	// Eligible: the hint answers false and leaves telemetry untouched.
	fresh := New(2, 1)
	if fresh.AcquireWouldFail(0) {
		t.Fatal("hint said a fresh bus would fail")
	}
	var zero = New(2, 1).Telemetry()
	if fresh.Telemetry() != zero {
		t.Errorf("false hint touched telemetry: %+v", fresh.Telemetry())
	}
}
