// Package rsin_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (go test -bench=. -benchmem),
// plus the ablation benches called out in DESIGN.md. Each BenchmarkFigN
// reports the figure's key series values as custom benchmark metrics so
// a run doubles as a regression record of the reproduced numbers.
package rsin_test

import (
	"fmt"
	"strings"
	"testing"

	"rsin/internal/config"
	"rsin/internal/core"
	"rsin/internal/crossbar"
	"rsin/internal/experiments"
	"rsin/internal/markov"
	"rsin/internal/obs"
	"rsin/internal/omega"
	"rsin/internal/queueing"
	"rsin/internal/shard"
	"rsin/internal/sim"
	"rsin/internal/workload"
)

// benchGrid is the ρ grid used by the benchmark harness: small enough
// to keep -bench runs quick, wide enough to span the paper's range.
func benchGrid() []float64 { return []float64{0.2, 0.5, 0.8} }

// benchNet parses and builds a configuration, failing the bench on
// error.
func benchNet(b *testing.B, s string, opt config.BuildOptions) core.Network {
	b.Helper()
	cfg, err := config.Parse(s)
	if err != nil {
		b.Fatal(err)
	}
	net, err := cfg.Build(opt)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// benchFig returns an unwrapper for (Figure, error) pairs that fails
// the bench on error. Usage: benchFig(b)(experiments.Fig7(...)).
func benchFig(b *testing.B) func(experiments.Figure, error) experiments.Figure {
	return func(fig experiments.Figure, err error) experiments.Figure {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		return fig
	}
}

func benchQuality() experiments.Quality {
	return experiments.Quality{Samples: 50000, Warmup: 1000, Seed: 1}
}

// BenchmarkFig4 regenerates Fig. 4 (SBUS delays, μs/μn = 0.1, exact
// Markov analysis).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4(benchGrid(), benchQuality())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(fig.FindSeries("16/16x1x1 SBUS/2").At(0.5), "d·μs(SBUS/2,ρ=.5)")
			b.ReportMetric(fig.FindSeries("16/8x2x1 SBUS/4").At(0.5), "d·μs(8-part,ρ=.5)")
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (SBUS delays, μs/μn = 1.0).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5(benchGrid(), benchQuality())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(fig.FindSeries("16/16x1x1 SBUS/2").At(0.5), "d·μs(SBUS/2,ρ=.5)")
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7 (XBAR delays, μs/μn = 0.1,
// simulation).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := benchFig(b)(experiments.Fig7(benchGrid(), benchQuality()))
		if i == 0 {
			b.ReportMetric(fig.FindSeries("16/1x16x32 XBAR/1").At(0.5), "d·μs(XBAR/1,ρ=.5)")
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8 (XBAR delays, μs/μn = 1.0).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := benchFig(b)(experiments.Fig8(benchGrid(), benchQuality()))
		if i == 0 {
			b.ReportMetric(fig.FindSeries("16/1x16x32 XBAR/1").At(0.5), "d·μs(XBAR/1,ρ=.5)")
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12 (Omega delays, μs/μn = 0.1).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := benchFig(b)(experiments.Fig12(benchGrid(), benchQuality()))
		if i == 0 {
			b.ReportMetric(fig.FindSeries("16/1x16x16 OMEGA/2").At(0.5), "d·μs(16x16,ρ=.5)")
			b.ReportMetric(fig.FindSeries("16/8x2x2 OMEGA/2").At(0.5), "d·μs(8x2x2,ρ=.5)")
		}
	}
}

// BenchmarkFig13 regenerates Fig. 13 (Omega delays, μs/μn = 1.0).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := benchFig(b)(experiments.Fig13(benchGrid(), benchQuality()))
		if i == 0 {
			b.ReportMetric(fig.FindSeries("16/1x16x16 OMEGA/2").At(0.5), "d·μs(16x16,ρ=.5)")
		}
	}
}

// BenchmarkBlocking regenerates the Section V blocking-probability
// comparison (paper: ≈0.15 RSIN vs ≈0.3 address-mapped on 8×8).
func BenchmarkBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Blocking(8, 20000, 0.5, 0.5, 7)
		if i == 0 {
			b.ReportMetric(r.RSINBlocked, "P(block,RSIN)")
			b.ReportMetric(r.AddressBlocked, "P(block,addr)")
			b.ReportMetric(r.RSINBoxesPerGrant, "boxes/grant")
		}
	}
}

// BenchmarkCompare regenerates the Section VI cross-network comparison.
func BenchmarkCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := benchFig(b)(experiments.FigCompare(0.1, []float64{0.9}, benchQuality()))
		if i == 0 {
			b.ReportMetric(fig.Series[0].At(0.9), "d·μs(SBUS/3,ρ=.9)")
			b.ReportMetric(fig.FindSeries("16/4x4x4 OMEGA/2").At(0.9), "d·μs(OMEGA,ρ=.9)")
		}
	}
}

// BenchmarkTable2 regenerates Table II (trivial, kept for completeness
// of the per-artifact index).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.TableII(); len(rows) != 5 {
			b.Fatal("table II incomplete")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkOmegaReroutePolicy compares in-network rerouting against
// reject-to-source on the 16×16 Omega network at moderate load.
func BenchmarkOmegaReroutePolicy(b *testing.B) {
	run := func(b *testing.B, noReroute bool) {
		lambda := queueing.LambdaForIntensity(0.6, 16, 1, 0.1, 32)
		for i := 0; i < b.N; i++ {
			net := benchNet(b, "16/1x16x16 OMEGA/2", config.BuildOptions{NoReroute: noReroute})
			res, err := sim.Run(net, sim.Config{
				Lambda: lambda, MuN: 1, MuS: 0.1, Seed: 1, Warmup: 1000, Samples: 50000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.NormalizedDelay.Mean, "d·μs")
				b.ReportMetric(float64(res.Telemetry.Rejects)/float64(res.Telemetry.Grants), "rejects/grant")
			}
		}
	}
	b.Run("reroute", func(b *testing.B) { run(b, false) })
	b.Run("no-reroute", func(b *testing.B) { run(b, true) })
}

// BenchmarkWakeupPolicy compares the retry orderings after a release:
// the paper's asymmetric index order, round-robin, and the POLYP-style
// random order.
func BenchmarkWakeupPolicy(b *testing.B) {
	lambda := queueing.LambdaForIntensity(0.7, 16, 1, 0.1, 32)
	for _, pol := range []sim.WakePolicy{sim.WakeIndexOrder, sim.WakeRoundRobin, sim.WakeRandom} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net := crossbar.New(16, 16, 2)
				res, err := sim.Run(net, sim.Config{
					Lambda: lambda, MuN: 1, MuS: 0.1,
					Seed: 1, Warmup: 1000, Samples: 50000, WakePolicy: pol,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.NormalizedDelay.Mean, "d·μs")
				}
			}
		})
	}
}

// BenchmarkStatusStaleness compares live status propagation (assumption
// (c)) against frozen phase-1 status on batched requests: the
// stale-status batch routing triggers the paper's reject/reroute
// mechanism.
func BenchmarkStatusStaleness(b *testing.B) {
	pids := []int{0, 3, 4, 5}
	b.Run("live", func(b *testing.B) {
		rejects := int64(0)
		for i := 0; i < b.N; i++ {
			o := omega.New(8, 1)
			for j := 2; j < 6; j++ {
				o.SetResourceAvailability(j, 0)
			}
			for _, pid := range pids {
				o.Acquire(pid)
			}
			rejects += o.Telemetry().Rejects
		}
		b.ReportMetric(float64(rejects)/float64(b.N), "rejects/batch")
	})
	b.Run("stale", func(b *testing.B) {
		rejects := int64(0)
		for i := 0; i < b.N; i++ {
			o := omega.New(8, 1)
			for j := 2; j < 6; j++ {
				o.SetResourceAvailability(j, 0)
			}
			o.AcquireBatch(pids)
			rejects += o.Telemetry().Rejects
		}
		b.ReportMetric(float64(rejects)/float64(b.N), "rejects/batch")
	})
}

// BenchmarkRetryJitter measures the paper's random-retry-delay
// suggestion (Section V): de-synchronizing the simultaneous retries
// caused by clocked status broadcasts, at the cost of extra queueing.
func BenchmarkRetryJitter(b *testing.B) {
	lambda := queueing.LambdaForIntensity(0.6, 16, 1, 0.1, 32)
	for _, jitter := range []float64{0, 0.1, 0.5} {
		b.Run(fmt.Sprintf("jitter=%g", jitter), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net := benchNet(b, "16/1x16x16 OMEGA/2", config.BuildOptions{})
				res, err := sim.Run(net, sim.Config{
					Lambda: lambda, MuN: 1, MuS: 0.1,
					Seed: 1, Warmup: 1000, Samples: 50000, RetryJitter: jitter,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.NormalizedDelay.Mean, "d·μs")
				}
			}
		})
	}
}

// BenchmarkWiringComparison compares the Omega and indirect-binary-
// n-cube wirings under identical load: isomorphic delta networks should
// perform identically for uniform traffic.
func BenchmarkWiringComparison(b *testing.B) {
	lambda := queueing.LambdaForIntensity(0.7, 16, 1, 0.1, 32)
	for _, s := range []string{"16/1x16x16 OMEGA/2", "16/1x16x16 CUBE/2"} {
		b.Run(s, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net := benchNet(b, s, config.BuildOptions{})
				res, err := sim.Run(net, sim.Config{
					Lambda: lambda, MuN: 1, MuS: 0.1,
					Seed: 1, Warmup: 1000, Samples: 50000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.NormalizedDelay.Mean, "d·μs")
				}
			}
		})
	}
}

// BenchmarkMarkovSolverComparison compares the three SBUS chain solvers
// on the canonical private-bus chain (the cross-check of Section III).
func BenchmarkMarkovSolverComparison(b *testing.B) {
	p := markov.Params{P: 16, Lambda: 0.05, MuN: 1, MuS: 0.1, R: 32}
	b.Run("matrix-geometric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := markov.SolveMatrixGeometric(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("block-tridiagonal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := markov.SolveTruncated(p, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("paper-stages", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := markov.SolveStages(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCellWave measures the gate-level request-cycle evaluation of
// the full 16×32 cell array (the structural model behind Table I).
func BenchmarkCellWave(b *testing.B) {
	a := crossbar.NewCellArray(16, 32)
	req := make([]bool, 16)
	ctl := make([]bool, 32)
	for i := range req {
		req[i] = true
	}
	for j := range ctl {
		ctl[j] = true
	}
	reset := make([]bool, 16)
	for i := range reset {
		reset[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RequestCycle(req, ctl)
		a.ResetCycle(reset)
	}
}

// BenchmarkEngineThroughput measures raw simulator event throughput on
// the three network classes, at the moderate 16-processor ρ=0.5 point
// and at the large-p high-intensity points (ρ=0.8) where release-time
// wake scans dominate the event loop — the incremental blocked-waiter
// engine's target regime. The probe= rows re-run a small-p and a
// large-p point with a live attribution or series recorder attached,
// so BENCH_sim.json records the probe-on throughput alongside the
// nil-probe path. The case names feed the CI benchmark gate
// (cmd/bench and the probe-overhead check), so they must stay stable.
func BenchmarkEngineThroughput(b *testing.B) {
	cases := []struct {
		name   string // b.Run label; the first three predate the ρ suffix
		cfg    string
		rho    float64
		p, res int
		probe  string // "", "attr" or "series": observability recorder attached per run
	}{
		{"16/16x1x1 SBUS/2", "16/16x1x1 SBUS/2", 0.5, 16, 32, ""},
		{"16/1x16x16 XBAR/2", "16/1x16x16 XBAR/2", 0.5, 16, 32, ""},
		{"16/1x16x16 OMEGA/2", "16/1x16x16 OMEGA/2", 0.5, 16, 32, ""},
		{"64/1x64x64 XBAR/2 rho=0.8", "64/1x64x64 XBAR/2", 0.8, 64, 128, ""},
		{"64/1x64x64 OMEGA/1 rho=0.8", "64/1x64x64 OMEGA/1", 0.8, 64, 64, ""},
		{"128/1x128x128 XBAR/1 rho=0.8", "128/1x128x128 XBAR/1", 0.8, 128, 128, ""},
		// Large-p points: the calendar-queue + SoA kernel's target regime
		// (EventQueueAuto selects the calendar at these sizes). Omega
		// networks cap at 64×64, so the large omega rows are partitioned
		// clusters of 64-wide subnetworks.
		{"1024/1x1024x1024 XBAR/1 rho=0.8", "1024/1x1024x1024 XBAR/1", 0.8, 1024, 1024, ""},
		{"1024/16x64x64 OMEGA/1 rho=0.8", "1024/16x64x64 OMEGA/1", 0.8, 1024, 1024, ""},
		{"4096/64x64x64 XBAR/1 rho=0.8", "4096/64x64x64 XBAR/1", 0.8, 4096, 4096, ""},
		{"4096/64x64x64 OMEGA/1 rho=0.8", "4096/64x64x64 OMEGA/1", 0.8, 4096, 4096, ""},
		// Probe-on rows: same workloads with an attribution or series
		// recorder live, covering both queue kernels (heap at p=16,
		// calendar at p=4096).
		{"16/1x16x16 OMEGA/2 probe=attr", "16/1x16x16 OMEGA/2", 0.5, 16, 32, "attr"},
		{"16/1x16x16 OMEGA/2 probe=series", "16/1x16x16 OMEGA/2", 0.5, 16, 32, "series"},
		{"4096/64x64x64 XBAR/1 rho=0.8 probe=attr", "4096/64x64x64 XBAR/1", 0.8, 4096, 4096, "attr"},
		{"4096/64x64x64 XBAR/1 rho=0.8 probe=series", "4096/64x64x64 XBAR/1", 0.8, 4096, 4096, "series"},
	}
	for _, c := range cases {
		lambda := queueing.LambdaForIntensity(c.rho, c.p, 1, 0.1, c.res)
		mkProbe := func() obs.Probe {
			switch c.probe {
			case "attr":
				return obs.NewAttrRecorder(10)
			case "series":
				s := obs.NewSeriesRecorder(c.p, 1)
				s.Reserve(4096)
				return s
			}
			return nil
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net := benchNet(b, c.cfg, config.BuildOptions{})
				if _, err := sim.Run(net, sim.Config{
					Lambda: lambda, MuN: 1, MuS: 0.1, Seed: 1, Warmup: 100, Samples: 20000,
					Probe: mkProbe(),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedRun compares the sharded orchestrator (internal/
// shard) against the classic monolithic event loop on the large-p
// partitioned configurations: one p=4096 system of 64 independent
// 64-wide sub-networks, run as a single 4096-processor event loop
// (classic) and as 64 sub-simulations batched into 8 jobs (shards=8).
// The sharded rows win even single-threaded — 64 small event loops are
// cheaper than one huge one (shorter queues, O(sub-p) wake scans) —
// and additionally parallelize across cores. The sample budget
// (Samples=64000, BatchSize=1000) is chosen so the whole-batch quotas
// deal exactly one batch to each sub-network: both estimators collect
// exactly 64000 samples, making the wall-clock ratio a same-work
// comparison. The case names feed the CI benchmark gate (cmd/bench),
// so they must stay stable.
func BenchmarkShardedRun(b *testing.B) {
	cases := []struct {
		name   string
		cfg    string
		shards int // 0 = classic monolithic sim.Run
	}{
		{"4096/64x64x64 XBAR/1 rho=0.8 classic", "4096/64x64x64 XBAR/1", 0},
		{"4096/64x64x64 XBAR/1 rho=0.8 shards=8", "4096/64x64x64 XBAR/1", 8},
		{"4096/64x64x64 OMEGA/1 rho=0.8 classic", "4096/64x64x64 OMEGA/1", 0},
		{"4096/64x64x64 OMEGA/1 rho=0.8 shards=8", "4096/64x64x64 OMEGA/1", 8},
	}
	lambda := queueing.LambdaForIntensity(0.8, 4096, 1, 0.1, 4096)
	simCfg := sim.Config{Lambda: lambda, MuN: 1, MuS: 0.1, Seed: 1, Warmup: 100, Samples: 64000, BatchSize: 1000}
	for _, c := range cases {
		cfg, err := config.Parse(c.cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c.shards == 0 {
					net := benchNet(b, c.cfg, config.BuildOptions{})
					if _, err := sim.Run(net, simCfg); err != nil {
						b.Fatal(err)
					}
				} else if _, err := shard.Run(shard.Config{
					Net: cfg, Sim: simCfg, Shards: c.shards,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSweep measures the parallel runner's speedup on a
// 4-point Full-quality sweep of one crossbar configuration: the same
// sweep at workers=1 and workers=4. On a ≥4-core machine the
// workers=4 run should finish at least ~2× faster; the benchmark also
// asserts that the rendered CSV is byte-identical across worker
// counts — the runner's determinism contract (run with
// `go test -bench ParallelSweep -benchtime 1x`).
func BenchmarkParallelSweep(b *testing.B) {
	grid := []float64{0.2, 0.4, 0.6, 0.8}
	cfg, err := config.Parse("16/1x16x16 OMEGA/2")
	if err != nil {
		b.Fatal(err)
	}
	render := func(workers int) string {
		q := experiments.Full()
		q.Workers = workers
		s, err := experiments.Sweep(cfg, 0.1, grid, q)
		if err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		fig := experiments.Figure{ID: "bench", XLabel: "rho", Series: []experiments.Series{s}}
		if err := fig.RenderCSV(&sb); err != nil {
			b.Fatal(err)
		}
		return sb.String()
	}
	var ref string
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				csv := render(workers)
				if ref == "" {
					ref = csv
				} else if csv != ref {
					b.Fatal("CSV output differs across worker counts or runs")
				}
			}
		})
	}
}

// BenchmarkSweepMachinery exercises the ρ→λ sweep conversion used by
// every figure.
func BenchmarkSweepMachinery(b *testing.B) {
	rhos := workload.PaperRhoGrid()
	for i := 0; i < b.N; i++ {
		pts := workload.Sweep(16, 1, 0.1, 32, rhos)
		if len(pts) != len(rhos) {
			b.Fatal("sweep lost points")
		}
	}
}
